//! Per-replica health: folding detection events into a status machine.
//!
//! The paper's replicator and selector each detect faults independently
//! (overflow latch, consumption divergence, stall, arrival divergence).
//! This module folds those raw events into one status per replica —
//! `Healthy → Suspected → Faulty` — and records time-to-detection in a
//! histogram so campaigns get detection-latency distributions for free.
//!
//! Severity rules: an **overflow latch** or a **stall** is hard evidence of
//! fail-stop (the queue physically overran / starved) and marks the replica
//! `Faulty` immediately. A **divergence** alone is statistical evidence and
//! marks it `Suspected`; any second event — same site or the peer site —
//! confirms `Faulty`.

use crate::metrics::{Histogram, HistogramSnapshot};
use std::sync::{Arc, Mutex};

/// Health status of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaStatus {
    /// No detection event observed.
    #[default]
    Healthy,
    /// One soft (divergence) detection observed; not yet confirmed.
    Suspected,
    /// Confirmed faulty (hard event, or a second detection).
    Faulty,
}

impl ReplicaStatus {
    /// Stable lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            ReplicaStatus::Healthy => "healthy",
            ReplicaStatus::Suspected => "suspected",
            ReplicaStatus::Faulty => "faulty",
        }
    }
}

/// Where (and how) a detection fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionSite {
    /// Replicator queue overflow latch (§3.3): hard.
    ReplicatorOverflow,
    /// Replicator consumption divergence: soft.
    ReplicatorDivergence,
    /// Selector stall (virtual space counter exhausted): hard.
    SelectorStall,
    /// Selector arrival divergence: soft.
    SelectorDivergence,
}

impl DetectionSite {
    /// `true` for sites that prove fail-stop on their own.
    pub fn is_hard(&self) -> bool {
        matches!(
            self,
            DetectionSite::ReplicatorOverflow | DetectionSite::SelectorStall
        )
    }

    /// Stable label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            DetectionSite::ReplicatorOverflow => "replicator.overflow",
            DetectionSite::ReplicatorDivergence => "replicator.divergence",
            DetectionSite::SelectorStall => "selector.stall",
            DetectionSite::SelectorDivergence => "selector.divergence",
        }
    }
}

/// Everything known about one replica.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaHealth {
    /// Folded status.
    pub status: ReplicaStatus,
    /// When the harness injected a fault, if it told us (ns).
    pub fault_injected_at_ns: Option<u64>,
    /// First detection timestamp (ns).
    pub first_detected_at_ns: Option<u64>,
    /// Site of the first detection.
    pub first_site: Option<DetectionSite>,
    /// Total detection events observed.
    pub detections: u64,
}

/// The health state machine over `n` replicas, plus the detection-latency
/// histogram (`detected_at − injected_at`, in nanoseconds).
///
/// `HealthModel` is a cloneable shared handle (`Arc<Mutex<_>>` inside): the
/// replicator and selector each hold a clone and report events as their
/// state machines latch, so by the end of a run the model has the fused
/// view neither site has alone.
#[derive(Debug, Clone)]
pub struct HealthModel {
    inner: Arc<Mutex<Vec<ReplicaHealth>>>,
    detection_latency: Histogram,
}

impl HealthModel {
    /// A model over `replicas` replicas, all healthy.
    pub fn new(replicas: usize) -> Self {
        HealthModel {
            inner: Arc::new(Mutex::new(vec![ReplicaHealth::default(); replicas])),
            detection_latency: Histogram::new(),
        }
    }

    /// Number of replicas tracked.
    pub fn replica_count(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Tells the model a fault was injected into `replica` at `at_ns`
    /// (virtual or wall ns — whatever clock the detections will use), so
    /// detection latency can be derived.
    pub fn note_fault_injected(&self, replica: usize, at_ns: u64) {
        let mut g = self.inner.lock().unwrap();
        if let Some(r) = g.get_mut(replica) {
            r.fault_injected_at_ns = Some(at_ns);
        }
    }

    /// Reports a detection event on `replica` from `site` at `at_ns`.
    ///
    /// Returns the new status. Out-of-range replicas are ignored (returns
    /// `Healthy`) so instrumentation can never panic the data path.
    pub fn on_detection(&self, replica: usize, site: DetectionSite, at_ns: u64) -> ReplicaStatus {
        let mut g = self.inner.lock().unwrap();
        let Some(r) = g.get_mut(replica) else {
            return ReplicaStatus::Healthy;
        };
        r.detections += 1;
        if r.first_detected_at_ns.is_none() {
            r.first_detected_at_ns = Some(at_ns);
            r.first_site = Some(site);
            if let Some(injected) = r.fault_injected_at_ns {
                self.detection_latency
                    .record(at_ns.saturating_sub(injected));
            }
        }
        r.status = match (r.status, site.is_hard()) {
            (_, true) => ReplicaStatus::Faulty,
            (ReplicaStatus::Healthy, false) => ReplicaStatus::Suspected,
            (ReplicaStatus::Suspected, false) => ReplicaStatus::Faulty,
            (ReplicaStatus::Faulty, false) => ReplicaStatus::Faulty,
        };
        r.status
    }

    /// Current status of `replica` (`Healthy` if out of range).
    pub fn status(&self, replica: usize) -> ReplicaStatus {
        self.inner
            .lock()
            .unwrap()
            .get(replica)
            .map(|r| r.status)
            .unwrap_or_default()
    }

    /// Snapshot of one replica's record.
    pub fn replica(&self, replica: usize) -> Option<ReplicaHealth> {
        self.inner.lock().unwrap().get(replica).copied()
    }

    /// Snapshot of every replica's record.
    pub fn replicas(&self) -> Vec<ReplicaHealth> {
        self.inner.lock().unwrap().clone()
    }

    /// The detection-latency histogram (ns).
    pub fn detection_latency(&self) -> &Histogram {
        &self.detection_latency
    }

    /// Summary stats of the detection-latency distribution.
    pub fn detection_latency_snapshot(&self) -> HistogramSnapshot {
        self.detection_latency.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_event_goes_straight_to_faulty() {
        let h = HealthModel::new(2);
        assert_eq!(h.status(0), ReplicaStatus::Healthy);
        let s = h.on_detection(0, DetectionSite::ReplicatorOverflow, 1_000);
        assert_eq!(s, ReplicaStatus::Faulty);
        assert_eq!(h.status(1), ReplicaStatus::Healthy, "peer untouched");
    }

    #[test]
    fn soft_event_suspects_then_second_confirms() {
        let h = HealthModel::new(2);
        assert_eq!(
            h.on_detection(1, DetectionSite::SelectorDivergence, 5),
            ReplicaStatus::Suspected
        );
        assert_eq!(
            h.on_detection(1, DetectionSite::ReplicatorDivergence, 9),
            ReplicaStatus::Faulty
        );
        let r = h.replica(1).unwrap();
        assert_eq!(r.detections, 2);
        assert_eq!(r.first_site, Some(DetectionSite::SelectorDivergence));
        assert_eq!(r.first_detected_at_ns, Some(5));
    }

    #[test]
    fn detection_latency_measured_from_injection() {
        let h = HealthModel::new(1);
        h.note_fault_injected(0, 3_000_000_000);
        h.on_detection(0, DetectionSite::SelectorStall, 3_250_000_000);
        let snap = h.detection_latency_snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 250_000_000);
        // Second detection on the same replica does not re-record latency.
        h.on_detection(0, DetectionSite::SelectorDivergence, 4_000_000_000);
        assert_eq!(h.detection_latency_snapshot().count, 1);
    }

    #[test]
    fn out_of_range_replica_is_ignored() {
        let h = HealthModel::new(1);
        assert_eq!(
            h.on_detection(7, DetectionSite::SelectorStall, 1),
            ReplicaStatus::Healthy
        );
        assert_eq!(h.replicas().len(), 1);
    }
}
