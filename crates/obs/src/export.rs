//! Exporters: JSONL event dumps, human-readable summary reports, and the
//! [`BenchMetrics`] bundle the bench harness embeds in its result JSON.

use crate::health::HealthModel;
use crate::json::{array, JsonObject};
use crate::metrics::{HistogramSnapshot, MetricsRegistry};
use crate::ring::EventSink;
use std::fmt::Write as _;

/// Renders every retained event as one JSON object per line, followed by a
/// trailer line recording how many events the ring evicted.
pub fn events_to_jsonl(sink: &EventSink) -> String {
    let mut out = String::new();
    for e in sink.events() {
        let mut obj = JsonObject::new()
            .u64_field("at_ns", e.at_ns)
            .str_field("clock", e.clock.label())
            .str_field("event", e.name);
        obj = obj.opt_u64_field("node", e.node.map(|n| n as u64));
        obj = obj.opt_u64_field("channel", e.channel.map(|c| c as u64));
        out.push_str(&obj.u64_field("value", e.value).finish());
        out.push('\n');
    }
    out.push_str(
        &JsonObject::new()
            .str_field("event", "sink.trailer")
            .u64_field("retained", sink.len() as u64)
            .u64_field("dropped", sink.dropped())
            .finish(),
    );
    out.push('\n');
    out
}

fn histogram_json(s: &HistogramSnapshot) -> String {
    JsonObject::new()
        .u64_field("count", s.count)
        .u64_field("sum", s.sum)
        .f64_field("mean", s.mean())
        .u64_field("p50", s.p50)
        .u64_field("p90", s.p90)
        .u64_field("p99", s.p99)
        .u64_field("max", s.max)
        .finish()
}

/// Renders a whole registry as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
pub fn registry_to_json(registry: &MetricsRegistry) -> String {
    let counters = format!(
        "{{{}}}",
        registry
            .counter_values()
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", crate::json::escape(k), v))
            .collect::<Vec<_>>()
            .join(",")
    );
    let gauges = format!(
        "{{{}}}",
        registry
            .gauge_values()
            .iter()
            .map(|(k, cur, max)| {
                format!(
                    "\"{}\":{}",
                    crate::json::escape(k),
                    JsonObject::new()
                        .u64_field("value", *cur)
                        .u64_field("max", *max)
                        .finish()
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    );
    let histograms = format!(
        "{{{}}}",
        registry
            .histogram_snapshots()
            .iter()
            .map(|(k, s)| format!("\"{}\":{}", crate::json::escape(k), histogram_json(s)))
            .collect::<Vec<_>>()
            .join(",")
    );
    JsonObject::new()
        .raw_field("counters", &counters)
        .raw_field("gauges", &gauges)
        .raw_field("histograms", &histograms)
        .finish()
}

/// A human-readable report over a registry and (optionally) a health model.
pub fn summary_report(registry: &MetricsRegistry, health: Option<&HealthModel>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== observability summary ==");
    let counters = registry.counter_values();
    if !counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in counters {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
    }
    let gauges = registry.gauge_values();
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges (value / high-water):");
        for (name, cur, max) in gauges {
            let _ = writeln!(out, "  {name:<40} {cur} / {max}");
        }
    }
    let hists = registry.histogram_snapshots();
    if !hists.is_empty() {
        let _ = writeln!(out, "histograms (count mean p50 p90 p99 max):");
        for (name, s) in hists {
            let _ = writeln!(
                out,
                "  {name:<40} n={} mean={:.1} p50≤{} p90≤{} p99≤{} max={}",
                s.count,
                s.mean(),
                s.p50,
                s.p90,
                s.p99,
                s.max
            );
        }
    }
    if let Some(h) = health {
        let _ = writeln!(out, "replica health:");
        for (i, r) in h.replicas().iter().enumerate() {
            match (r.status, r.first_site, r.first_detected_at_ns) {
                (crate::health::ReplicaStatus::Healthy, _, _) => {
                    let _ = writeln!(out, "  replica {i}: healthy");
                }
                (status, site, at) => {
                    let _ = writeln!(
                        out,
                        "  replica {i}: {} (first: {} at {} ns, {} event(s))",
                        status.label(),
                        site.map(|s| s.label()).unwrap_or("?"),
                        at.unwrap_or(0),
                        r.detections
                    );
                }
            }
        }
        let lat = h.detection_latency_snapshot();
        if lat.count > 0 {
            let _ = writeln!(
                out,
                "detection latency: n={} mean={:.0} ns p50≤{} p99≤{} max={} ns",
                lat.count,
                lat.mean(),
                lat.p50,
                lat.p99,
                lat.max
            );
        }
    }
    out
}

/// The metrics bundle a bench campaign embeds into its result JSON:
/// detection-latency distribution, per-site detection counts, and the
/// observed queue high-water marks.
#[derive(Debug, Clone, Default)]
pub struct BenchMetrics {
    /// Detection latency distribution across all runs (ns).
    pub detection_latency: HistogramSnapshot,
    /// Detections per site label (`"replicator.overflow"`, ...).
    pub detections_by_site: Vec<(String, u64)>,
    /// Max observed fill per queue label, across all runs.
    pub max_fills: Vec<(String, u64)>,
    /// Number of campaign runs folded in.
    pub runs: u64,
}

impl BenchMetrics {
    /// Renders the bundle as a JSON object.
    pub fn to_json(&self) -> String {
        let sites = array(self.detections_by_site.iter().map(|(k, v)| {
            JsonObject::new()
                .str_field("site", k)
                .u64_field("count", *v)
                .finish()
        }));
        let fills = array(self.max_fills.iter().map(|(k, v)| {
            JsonObject::new()
                .str_field("queue", k)
                .u64_field("max_fill", *v)
                .finish()
        }));
        JsonObject::new()
            .u64_field("runs", self.runs)
            .raw_field(
                "detection_latency_ns",
                &histogram_json(&self.detection_latency),
            )
            .raw_field("detections_by_site", &sites)
            .raw_field("max_observed_fills", &fills)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::DetectionSite;
    use crate::ring::{ClockDomain, EventRecord};

    #[test]
    fn jsonl_has_one_line_per_event_plus_trailer() {
        let sink = EventSink::new(8);
        sink.push(EventRecord {
            at_ns: 5,
            clock: ClockDomain::Virtual,
            name: "token.read",
            node: Some(1),
            channel: Some(0),
            value: 42,
        });
        let jsonl = events_to_jsonl(&sink);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"token.read\""));
        assert!(lines[0].contains("\"at_ns\":5"));
        assert!(lines[1].contains("\"dropped\":0"));
    }

    #[test]
    fn summary_covers_metrics_and_health() {
        let reg = MetricsRegistry::new();
        reg.counter("kpn.engine.events").add(10);
        reg.gauge("q.fill").set(3);
        reg.histogram("lat").record(100);
        let health = HealthModel::new(2);
        health.note_fault_injected(0, 10);
        health.on_detection(0, DetectionSite::ReplicatorOverflow, 30);
        let report = summary_report(&reg, Some(&health));
        assert!(report.contains("kpn.engine.events"));
        assert!(report.contains("replica 0: faulty"));
        assert!(report.contains("replica 1: healthy"));
        assert!(report.contains("detection latency: n=1"));
    }

    #[test]
    fn bench_metrics_json_is_well_formed() {
        let m = BenchMetrics {
            detection_latency: HistogramSnapshot {
                count: 2,
                sum: 30,
                max: 20,
                p50: 15,
                p90: 31,
                p99: 31,
            },
            detections_by_site: vec![("selector.stall".into(), 2)],
            max_fills: vec![("replicator.q0".into(), 4)],
            runs: 20,
        };
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"runs\":20"));
        assert!(j.contains("\"site\":\"selector.stall\""));
        assert!(j.contains("\"max_fill\":4"));
    }

    #[test]
    fn registry_json_has_three_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge_named("g.dyn").set(2);
        reg.histogram("h").record(7);
        let j = registry_to_json(&reg);
        assert!(j.contains("\"counters\":{\"c\":1}"));
        assert!(j.contains("\"g.dyn\""));
        assert!(j.contains("\"p50\""));
    }
}
