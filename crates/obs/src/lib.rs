//! # rtft-obs — zero-timekeeping observability
//!
//! The observability subsystem of the `rtft` workspace (S15 in DESIGN.md):
//! metrics, bounded event sinks, replica health, and exporters — usable
//! from both the deterministic DES engine (virtual [`TimeNs`]-style
//! nanosecond timestamps) and the threaded runtime (wall-clock
//! nanoseconds), with **no dependencies** and nothing on the hot path
//! heavier than a relaxed atomic.
//!
//! Why "zero-timekeeping": the paper's detection mechanism is counter-only
//! — it never reads a clock at runtime. The instrumentation layer follows
//! the same discipline: counters, gauges and histograms are plain atomics;
//! timestamps only enter through values the runtimes already have (the
//! DES's virtual `now`, the threaded runtime's epoch offset). Disabling
//! observability reduces every instrumented site to one branch.
//!
//! Pieces:
//!
//! * [`MetricsRegistry`] / [`Counter`] / [`Gauge`] / [`Histogram`] —
//!   named atomic metrics; histograms are fixed-layout log₂ buckets with
//!   p50/p90/p99/max queries.
//! * [`Ring`] / [`EventSink`] — bounded event storage with drop counting;
//!   subsumes the old unbounded `kpn::trace` log.
//! * [`Hll`] — a mergeable HyperLogLog distinct counter (fixed hash, so
//!   estimates are reproducible) for unique-streams / unique-tenants
//!   rollups.
//! * [`HealthModel`] — folds replicator/selector detection events into
//!   per-replica `Healthy`/`Suspected`/`Faulty` status with a
//!   time-to-detection histogram.
//! * [`export`] — JSONL event dumps, human-readable summaries, and the
//!   [`BenchMetrics`] bundle embedded in bench campaign JSON.
//!
//! [`TimeNs`]: https://docs.rs/rtft-rtc
//!
//! # Example
//!
//! ```
//! use rtft_obs::{DetectionSite, HealthModel, MetricsRegistry};
//!
//! let metrics = MetricsRegistry::new();
//! let reads = metrics.counter("kpn.tokens.read");
//! reads.add(3);
//!
//! let lat = metrics.histogram("detect.latency_ns");
//! lat.record(250_000_000);
//! assert_eq!(lat.snapshot().count, 1);
//!
//! let health = HealthModel::new(2);
//! health.note_fault_injected(0, 3_000_000_000);
//! health.on_detection(0, DetectionSite::ReplicatorOverflow, 3_200_000_000);
//! assert_eq!(health.status(0), rtft_obs::ReplicaStatus::Faulty);
//! println!("{}", rtft_obs::export::summary_report(&metrics, Some(&health)));
//! ```

#![warn(missing_docs)]

pub mod export;
mod health;
mod hll;
pub mod json;
mod metrics;
mod ring;

pub use export::{events_to_jsonl, registry_to_json, summary_report, BenchMetrics};
pub use health::{DetectionSite, HealthModel, ReplicaHealth, ReplicaStatus};
pub use hll::Hll;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use ring::{ClockDomain, EventRecord, EventSink, Ring};
