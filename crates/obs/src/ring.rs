//! Bounded ring buffers: event storage that cannot grow without bound.
//!
//! Long fault-injection campaigns used to fill `kpn::trace::Trace`'s
//! unbounded `Vec` with millions of events; the ring keeps the most recent
//! `capacity` entries and *counts* what it evicts, so post-processing knows
//! exactly how lossy the record is.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A bounded FIFO ring: pushes beyond capacity evict the **oldest** entry
/// and increment the drop counter.
#[derive(Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `item`, evicting the oldest entry if full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring into a `Vec`, oldest first (drop count survives).
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }
}

impl<T: Clone> Ring<T> {
    /// A copy of the held entries, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.buf.iter().cloned().collect()
    }
}

/// Which clock produced an event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Deterministic virtual time from the DES engine.
    Virtual,
    /// Wall-clock nanoseconds since the run's epoch (threaded runtime).
    Wall,
}

impl ClockDomain {
    /// Stable lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            ClockDomain::Virtual => "virtual",
            ClockDomain::Wall => "wall",
        }
    }
}

/// One observability event: a named occurrence at a timestamp, scoped to a
/// node and/or channel, with one free integer field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Timestamp in nanoseconds (virtual or wall per `clock`).
    pub at_ns: u64,
    /// Clock domain of `at_ns`.
    pub clock: ClockDomain,
    /// Event name (`"token.read"`, `"fault.latched"`, ...).
    pub name: &'static str,
    /// Originating process index, if any.
    pub node: Option<usize>,
    /// Originating channel index, if any.
    pub channel: Option<usize>,
    /// Event-specific value (sequence number, replica index, fill, ...).
    pub value: u64,
}

/// A shared, thread-safe, bounded event sink.
///
/// Both runtimes (DES under virtual time, threads under wall clock) push
/// [`EventRecord`]s here; exporters read them back as JSONL. Cloning shares
/// the underlying ring.
#[derive(Debug, Clone)]
pub struct EventSink {
    ring: Arc<Mutex<Ring<EventRecord>>>,
}

impl EventSink {
    /// A sink retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventSink {
            ring: Arc::new(Mutex::new(Ring::new(capacity))),
        }
    }

    /// Records an event.
    pub fn push(&self, event: EventRecord) {
        self.ring.lock().unwrap().push(event);
    }

    /// A copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.ring.lock().unwrap().to_vec()
    }

    /// Number of retained events named `name`. Lifecycle assertions
    /// (eviction counts, retry storms) read this instead of re-parsing
    /// the JSONL export; note the ring is bounded, so the count covers
    /// only the retained window.
    pub fn count(&self, name: &str) -> u64 {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.name == name)
            .count() as u64
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// `true` if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut r = Ring::new(10);
        r.push("a");
        r.push("b");
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.to_vec(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u8>::new(0);
    }

    #[test]
    fn sink_is_shared_across_clones() {
        let sink = EventSink::new(4);
        let other = sink.clone();
        other.push(EventRecord {
            at_ns: 1,
            clock: ClockDomain::Virtual,
            name: "x",
            node: Some(0),
            channel: None,
            value: 7,
        });
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.events()[0].value, 7);
    }
}
