//! A minimal hand-rolled JSON writer.
//!
//! The workspace carries no external crates, so the exporters build their
//! JSON with this ~100-line writer instead of serde. It covers exactly what
//! the exporters need: objects, arrays, strings (escaped), integers, floats
//! and booleans — composed as `String`s.

use std::fmt::Write as _;

/// Escapes `s` as JSON string *content* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Inf: those become
/// `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a float field.
    pub fn f64_field(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("\"{}\":{}", escape(key), number(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a pre-rendered JSON value (nested object/array) verbatim.
    pub fn raw_field(mut self, key: &str, json: &str) -> Self {
        self.fields.push(format!("\"{}\":{}", escape(key), json));
        self
    }

    /// Adds an optional unsigned integer field (`null` when absent).
    pub fn opt_u64_field(mut self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.fields.push(format!("\"{}\":{}", escape(key), v)),
            None => self.fields.push(format!("\"{}\":null", escape(key))),
        }
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_round_trip_shape() {
        let o = JsonObject::new()
            .str_field("name", "x\"y")
            .u64_field("n", 3)
            .bool_field("ok", true)
            .opt_u64_field("missing", None)
            .raw_field("nested", "[1,2]")
            .finish();
        assert_eq!(
            o,
            "{\"name\":\"x\\\"y\",\"n\":3,\"ok\":true,\"missing\":null,\"nested\":[1,2]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn arrays_compose() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
