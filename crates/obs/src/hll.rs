//! HyperLogLog distinct-value sketch.
//!
//! The fleet report wants "how many distinct streams / tenants did this
//! shard touch" without keeping a `HashSet` per shard alive for the whole
//! campaign. [`Hll`] answers that in 4 KiB of fixed state per sketch: a
//! classic HyperLogLog with `2^12` single-byte registers, a relaxed-atomic
//! insert path (same discipline as [`Counter`](crate::Counter)), and a
//! register-wise-max [`Hll::merge_from`] that is commutative and
//! idempotent — merging per-shard sketches in any order, or re-merging the
//! same sketch, yields byte-identical registers. That is what keeps tenant
//! reports invariant under shard count: however streams are partitioned
//! across shards, `max` over the union of registers equals the registers
//! of one sketch fed everything.
//!
//! The hash is fixed (FNV-1a folded through the SplitMix64 finalizer), so
//! estimates are reproducible across runs and platforms and can be pinned
//! in tests.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Register-index bits. `2^12 = 4096` registers ⇒ ~1.6 % standard error,
/// 4 KiB per sketch.
const HLL_P: u32 = 12;
/// Number of registers.
const HLL_M: usize = 1 << HLL_P;

/// A mergeable HyperLogLog distinct counter.
///
/// Clones share state, like every other metric in this crate: cloning a
/// handle and inserting through either side updates the same registers.
///
/// ```
/// use rtft_obs::Hll;
///
/// let sketch = Hll::new();
/// for v in 0..500u64 {
///     sketch.insert_u64(v);
///     sketch.insert_u64(v); // duplicates don't count
/// }
/// let est = sketch.estimate();
/// assert!((est - 500.0).abs() / 500.0 < 0.05);
/// ```
#[derive(Clone)]
pub struct Hll {
    registers: Arc<[AtomicU8; HLL_M]>,
}

impl Default for Hll {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Hll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hll")
            .field("estimate", &self.estimate_u64())
            .finish()
    }
}

impl Hll {
    /// Create an empty sketch.
    pub fn new() -> Self {
        Hll {
            registers: Arc::new([const { AtomicU8::new(0) }; HLL_M]),
        }
    }

    /// Insert a `u64` key. Idempotent: re-inserting a value never changes
    /// the estimate.
    pub fn insert_u64(&self, value: u64) {
        let h = splitmix64_mix(value ^ 0x5851_f42d_4c95_7f2d);
        self.insert_hash(h);
    }

    /// Insert an arbitrary byte-string key.
    pub fn insert_bytes(&self, value: &[u8]) {
        self.insert_hash(splitmix64_mix(fnv1a(value)));
    }

    fn insert_hash(&self, h: u64) {
        let idx = (h >> (64 - HLL_P)) as usize;
        // Rank of the first set bit in the remaining 64-P bits, 1-based;
        // an all-zero remainder ranks 64-P+1.
        let rest = h << HLL_P;
        let rho = if rest == 0 {
            (64 - HLL_P + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        self.registers[idx].fetch_max(rho, Ordering::Relaxed);
    }

    /// Estimated number of distinct keys inserted so far.
    ///
    /// Uses the standard HyperLogLog estimator with the linear-counting
    /// correction for small cardinalities, where it is near-exact.
    pub fn estimate(&self) -> f64 {
        let m = HLL_M as f64;
        let mut inverse_sum = 0.0f64;
        let mut zeros = 0usize;
        for r in self.registers.iter() {
            let v = r.load(Ordering::Relaxed);
            if v == 0 {
                zeros += 1;
            }
            inverse_sum += 1.0 / ((1u64 << v.min(63)) as f64);
        }
        // alpha_m for m >= 128.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / inverse_sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting on empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// [`Hll::estimate`] rounded to the nearest integer — the form reports
    /// serialize, and the form tests pin.
    pub fn estimate_u64(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// Fold another sketch into this one (register-wise max).
    ///
    /// Commutative, associative, and idempotent, like
    /// [`Histogram::merge_from`](crate::Histogram::merge_from); merging a
    /// sketch into itself (shared-state clones included) is a no-op.
    pub fn merge_from(&self, other: &Hll) {
        if Arc::ptr_eq(&self.registers, &other.registers) {
            return;
        }
        for (mine, theirs) in self.registers.iter().zip(other.registers.iter()) {
            mine.fetch_max(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// True when no key was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.registers
            .iter()
            .all(|r| r.load(Ordering::Relaxed) == 0)
    }
}

/// SplitMix64 finalizer — the same bit-mixer the workspace's seeded RNGs
/// use, applied here to spread FNV/sequential keys over all 64 bits.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string (64-bit), matching the digest family used
/// across the workspace.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = Hll::new();
        assert!(h.is_empty());
        assert_eq!(h.estimate_u64(), 0);
    }

    #[test]
    fn inserts_are_idempotent() {
        let h = Hll::new();
        for v in 0..100u64 {
            h.insert_u64(v);
        }
        let once = h.estimate_u64();
        for v in 0..100u64 {
            h.insert_u64(v);
        }
        assert_eq!(h.estimate_u64(), once);
    }

    #[test]
    fn fixed_vectors_pin_estimates() {
        // The hash is fixed, so these estimates are part of the contract:
        // a change to the hash or estimator shows up here first.
        for (n, tolerance) in [(8u64, 0.0), (100, 0.03), (1_000, 0.03), (50_000, 0.04)] {
            let h = Hll::new();
            for v in 0..n {
                h.insert_u64(v);
            }
            let est = h.estimate_u64();
            let err = (est as f64 - n as f64).abs() / n as f64;
            assert!(
                err <= tolerance,
                "n={n}: estimate {est} outside {tolerance} relative error"
            );
        }
        // One exact pin: byte-string and u64 paths are distinct keys.
        let h = Hll::new();
        for v in 0..1_000u64 {
            h.insert_u64(v);
        }
        let pinned = h.estimate_u64();
        let again = Hll::new();
        for v in 0..1_000u64 {
            again.insert_u64(v);
        }
        assert_eq!(
            again.estimate_u64(),
            pinned,
            "estimate must be reproducible"
        );
    }

    #[test]
    fn bytes_and_u64_key_spaces_differ() {
        let a = Hll::new();
        a.insert_u64(7);
        let b = Hll::new();
        b.insert_bytes(&7u64.to_le_bytes());
        // Different key derivations should (with this fixed hash) land in
        // different registers; the merged sketch sees two keys.
        a.merge_from(&b);
        assert_eq!(a.estimate_u64(), 2);
    }

    #[test]
    fn merge_equals_union_under_any_partition() {
        // Partition 0..N across k sketches by any rule, merge, and the
        // registers equal one sketch fed everything — the shard-count
        // invariance the tenant rollup relies on.
        const N: u64 = 2_000;
        let whole = Hll::new();
        for v in 0..N {
            whole.insert_u64(v);
        }
        for k in [1usize, 2, 3, 7] {
            let parts: Vec<Hll> = (0..k).map(|_| Hll::new()).collect();
            for v in 0..N {
                parts[(v as usize) % k].insert_u64(v);
            }
            let merged = Hll::new();
            // Merge in reverse order to exercise commutativity too.
            for p in parts.iter().rev() {
                merged.merge_from(p);
            }
            assert_eq!(merged.estimate_u64(), whole.estimate_u64(), "k={k}");
        }
    }

    #[test]
    fn merge_is_idempotent_and_self_safe() {
        let a = Hll::new();
        for v in 0..300u64 {
            a.insert_u64(v);
        }
        let before = a.estimate_u64();
        a.merge_from(&a.clone()); // shared-state clone: must not deadlock or change
        a.merge_from(&a);
        assert_eq!(a.estimate_u64(), before);
        let b = Hll::new();
        for v in 100..400u64 {
            b.insert_u64(v);
        }
        a.merge_from(&b);
        let merged = a.estimate_u64();
        a.merge_from(&b);
        assert_eq!(a.estimate_u64(), merged);
        let err = (merged as f64 - 400.0).abs() / 400.0;
        assert!(err < 0.05, "union estimate {merged} too far from 400");
    }

    #[test]
    fn clones_share_registers() {
        let a = Hll::new();
        let b = a.clone();
        b.insert_u64(42);
        assert!(!a.is_empty());
        assert_eq!(a.estimate_u64(), 1);
    }
}
