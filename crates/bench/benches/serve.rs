//! E11: serve ingestion throughput — tokens/sec and end-to-end p99 flush
//! latency versus concurrent connections.
//!
//! Each connection is a real loopback TCP client streaming ADPCM-profile
//! token batches into its own duplicated pipeline and waiting for every
//! `Output` frame to come back: the measured latency covers framing, the
//! socket round trip, fleet admission, the DES run of the duplicated
//! network, and the notifier push — the full serving path. Saturated
//! admission shows up as explicit `Busy` retries (counted, never lost
//! tokens), so the bench also exercises the backpressure path under load.
//!
//! Run with `cargo bench --bench serve`; emits a machine-readable
//! `BENCH_serve.json:` line for trend tracking.

use rtft_apps::networks::App;
use rtft_bench::report::{banner, AsciiTable};
use rtft_fleet::FleetConfig;
use rtft_obs::json::{array, JsonObject};
use rtft_obs::Histogram;
use rtft_serve::{workload, Client, Server, ServerConfig};
use std::time::{Duration, Instant};

const CONNECTIONS: [usize; 3] = [1, 4, 16];
const FLUSHES_PER_CONNECTION: usize = 4;
const TOKENS_PER_FLUSH: usize = 16;

struct ScalePoint {
    connections: usize,
    tokens_per_sec: f64,
    p99_ms: f64,
    busy_retries: u64,
}

fn run_point(connections: usize) -> ScalePoint {
    let cfg = ServerConfig {
        fleet: FleetConfig {
            workers: 4,
            pending_capacity: connections.max(4),
            max_replacements: 0,
        },
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("bench-{c}")).expect("connect");
                let stream = client
                    .open_stream(App::Adpcm, 2)
                    .expect("open")
                    .expect_stream();
                let latency = Histogram::new();
                let mut delivered = 0u64;
                let mut busy = 0u64;
                for f in 0..FLUSHES_PER_CONNECTION {
                    let batch = workload(App::Adpcm, (c * 31 + f) as u64, TOKENS_PER_FLUSH);
                    client.send_tokens(stream, &batch).expect("send");
                    let t0 = Instant::now();
                    loop {
                        let run = client.flush(stream).expect("flush");
                        if run.busy.is_some() {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        delivered += run.outputs.len() as u64;
                        latency.record(t0.elapsed().as_nanos() as u64);
                        break;
                    }
                }
                client.close(stream).expect("close");
                (delivered, busy, latency)
            })
        })
        .collect();

    let mut delivered = 0u64;
    let mut busy_retries = 0u64;
    let latency = Histogram::new();
    for handle in handles {
        let (d, b, h) = handle.join().expect("client thread");
        delivered += d;
        busy_retries += b;
        latency.merge_from(&h);
    }
    let elapsed = start.elapsed().as_secs_f64();

    let report = server.shutdown();
    assert!(report.balanced(), "token accounting must balance");
    let expected = (connections * FLUSHES_PER_CONNECTION * TOKENS_PER_FLUSH) as u64;
    assert_eq!(delivered, expected, "every token must come back");

    ScalePoint {
        connections,
        tokens_per_sec: delivered as f64 / elapsed,
        p99_ms: latency.snapshot().p99 as f64 / 1e6,
        busy_retries,
    }
}

fn main() {
    banner("E11: serve ingestion throughput vs connections");
    println!(
        "{FLUSHES_PER_CONNECTION} flushes x {TOKENS_PER_FLUSH} ADPCM tokens per connection, \
         duplicated pipelines under the DES runtime\n"
    );

    let points: Vec<ScalePoint> = CONNECTIONS.iter().map(|&c| run_point(c)).collect();

    let mut table = AsciiTable::new();
    table.row([
        "connections",
        "tokens/sec",
        "p99 flush (ms)",
        "busy retries",
    ]);
    for p in &points {
        table.row([
            p.connections.to_string(),
            format!("{:.0}", p.tokens_per_sec),
            format!("{:.1}", p.p99_ms),
            p.busy_retries.to_string(),
        ]);
    }
    println!("{}", table.render());

    let scaling = points.last().unwrap().tokens_per_sec / points[0].tokens_per_sec;
    println!(
        "scaling {}→{} connections: {scaling:.2}x",
        points[0].connections,
        points.last().unwrap().connections
    );

    let json = JsonObject::new()
        .raw_field(
            "points",
            &array(points.iter().map(|p| {
                JsonObject::new()
                    .u64_field("connections", p.connections as u64)
                    .f64_field("tokens_per_sec", p.tokens_per_sec)
                    .f64_field("p99_ms", p.p99_ms)
                    .u64_field("busy_retries", p.busy_retries)
                    .finish()
            })),
        )
        .f64_field("scaling_1_to_16", scaling)
        .finish();
    println!("BENCH_serve.json: {json}");
}
