//! E14: tenant admission overhead — directory throughput and latency
//! versus tenant count and supervisor shard count.
//!
//! The admission path is what every accepted batch pays before the fleet
//! sees it: resolve the tenant in its shard, check the queue quota, take
//! an in-flight slot, consult the rate bucket. This bench drives that
//! path with four worker threads over directories of 100 → 10 000
//! attached tenants, at one shard (every resolve contends on one lock)
//! and four shards (hash-spread). Each operation is the full state-
//! neutral cycle `admit_tokens → admit_flush → cancel_flush →
//! release_buffered`, so the directory is back in its initial state
//! after every op and the numbers are steady-state.
//!
//! Shard speedup is lock-contention relief, so it needs real
//! parallelism: on a single-core host the four workers time-slice and
//! the 4-shard/1-shard ratio sits near 1.0x; the contention the shards
//! remove only materializes with ≥2 cores driving admission
//! concurrently.
//!
//! Run with `cargo bench --bench tenant`; emits a machine-readable
//! `BENCH_tenant.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_obs::json::{array, JsonObject};
use rtft_tenant::{TenantConfig, TenantId, TenantManager};
use std::sync::Arc;
use std::time::Instant;

const TENANT_COUNTS: [usize; 3] = [100, 1_000, 10_000];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const WORKERS: usize = 4;
const OPS_PER_WORKER: usize = 10_000;
const BATCH_TOKENS: u64 = 8;

struct Point {
    tenants: usize,
    shards: usize,
    attach_per_sec: f64,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_point(tenants: usize, shards: usize) -> Point {
    let mgr = Arc::new(TenantManager::new(shards));
    let start = Instant::now();
    let ids: Vec<TenantId> = (0..tenants)
        .map(|i| {
            mgr.attach(&format!("bench-{i}"), TenantConfig::default())
                .expect("fresh names attach")
        })
        .collect();
    let attach_per_sec = tenants as f64 / start.elapsed().as_secs_f64();
    let ids = Arc::new(ids);

    let start = Instant::now();
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let mgr = Arc::clone(&mgr);
            let ids = Arc::clone(&ids);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(OPS_PER_WORKER);
                for n in 0..OPS_PER_WORKER {
                    // Round-robin over the directory, interleaved across
                    // workers so shard locks actually contend.
                    let id = ids[(w + n * WORKERS) % ids.len()];
                    let op = Instant::now();
                    mgr.admit_tokens(id, BATCH_TOKENS).expect("under quota");
                    mgr.admit_flush(id, BATCH_TOKENS, 0)
                        .expect("under in-flight cap");
                    mgr.cancel_flush(id, BATCH_TOKENS);
                    mgr.release_buffered(id, BATCH_TOKENS);
                    latencies.push(op.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("worker thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    Point {
        tenants,
        shards,
        attach_per_sec,
        ops_per_sec: (WORKERS * OPS_PER_WORKER) as f64 / elapsed,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
    }
}

fn main() {
    banner("E14: tenant admission overhead");
    println!(
        "{WORKERS} workers x {OPS_PER_WORKER} admissions ({BATCH_TOKENS} tokens each), \
         host parallelism {}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let points: Vec<Point> = TENANT_COUNTS
        .iter()
        .flat_map(|&t| SHARD_COUNTS.iter().map(move |&s| run_point(t, s)))
        .collect();

    let mut table = AsciiTable::new();
    table.row([
        "tenants",
        "shards",
        "attach/sec",
        "admissions/sec",
        "p50 ns",
        "p99 ns",
    ]);
    for p in &points {
        table.row([
            p.tenants.to_string(),
            p.shards.to_string(),
            format!("{:.0}", p.attach_per_sec),
            format!("{:.0}", p.ops_per_sec),
            p.p50_ns.to_string(),
            p.p99_ns.to_string(),
        ]);
    }
    println!("{}", table.render());

    for &t in &TENANT_COUNTS {
        let of = |s: usize| {
            points
                .iter()
                .find(|p| p.tenants == t && p.shards == s)
                .expect("point")
                .ops_per_sec
        };
        println!(
            "{t} tenants: 4-shard / 1-shard admission speedup {:.2}x",
            of(4) / of(1)
        );
    }
    println!(
        "(shard speedup is contention relief — expect ~1.0x on a 1-core host, \
         and it to grow with cores driving admission in parallel)\n"
    );

    let json = JsonObject::new()
        .u64_field("workers", WORKERS as u64)
        .u64_field("ops_per_worker", OPS_PER_WORKER as u64)
        .raw_field(
            "points",
            &array(points.iter().map(|p| {
                JsonObject::new()
                    .u64_field("tenants", p.tenants as u64)
                    .u64_field("shards", p.shards as u64)
                    .f64_field("attach_per_sec", p.attach_per_sec)
                    .f64_field("admissions_per_sec", p.ops_per_sec)
                    .u64_field("p50_ns", p.p50_ns)
                    .u64_field("p99_ns", p.p99_ns)
                    .finish()
            })),
        )
        .finish();
    println!("BENCH_tenant.json: {json}");
}
