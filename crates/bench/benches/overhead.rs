//! E8: microbenches of the framework's per-operation cost — the rigorous
//! version of Table 2's "Runtime" overhead row — plus the observability
//! ablation: the same duplicated-network simulation with metrics off and
//! on, which must agree within noise (the instrumentation is a handful of
//! relaxed atomic increments behind an `Option` check).
//!
//! Plain `std::time::Instant` harness: repeats each measurement and
//! reports the minimum (least-noise) per-op / per-run cost.

use rtft_apps::networks::App;
use rtft_core::{
    build_duplicated, instrument_duplicated, Replicator, ReplicatorConfig, Selector, SelectorConfig,
};
use rtft_kpn::{ChannelBehavior, Engine, Payload, Token};
use rtft_obs::MetricsRegistry;
use rtft_rtc::sizing::{DuplicationModel, SizingReport};
use rtft_rtc::{PjdModel, TimeNs};
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 5;
const OPS: u64 = 200_000;

fn tok(seq: u64) -> Token {
    Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
}

/// Runs `f` (a whole timed block) `REPS` times, returns the minimum
/// elapsed nanoseconds.
fn min_elapsed_ns(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

fn bench_replicator() {
    let per_op = |divergence: Option<u64>| {
        let mut cfg = ReplicatorConfig::new([8, 8]);
        if let Some(d) = divergence {
            cfg = cfg.with_divergence_threshold(d);
        }
        min_elapsed_ns(|| {
            let mut r = Replicator::new("bench", cfg);
            for i in 0..OPS {
                let _ = black_box(r.try_write(0, tok(i), TimeNs::from_ns(i)));
                let _ = black_box(r.try_read(0, TimeNs::from_ns(i)));
                let _ = black_box(r.try_read(1, TimeNs::from_ns(i)));
            }
        }) as f64
            / OPS as f64
    };
    println!(
        "replicator/write+2reads                {:8.1} ns/op",
        per_op(None)
    );
    println!(
        "replicator/write_with_divergence_check {:8.1} ns/op",
        per_op(Some(4))
    );
}

fn bench_selector() {
    let ns = min_elapsed_ns(|| {
        let mut s = Selector::new("bench", SelectorConfig::new([8, 8], 4));
        for i in 0..OPS {
            let _ = black_box(s.try_write(0, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(s.try_write(1, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(s.try_read(0, TimeNs::from_ns(i)));
        }
    }) as f64
        / OPS as f64;
    println!("selector/pair_write+read               {:8.1} ns/op", ns);
}

fn bench_sizing_analysis() {
    // The offline analysis cost (not on the critical path, but the paper's
    // "derived quickly from calibrations" claim deserves a number).
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0),
        PjdModel::from_ms(30.0, 2.0, 90.0),
        [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    );
    let iters = 2_000u64;
    let ns = min_elapsed_ns(|| {
        for _ in 0..iters {
            let _ = black_box(SizingReport::analyze(black_box(&model)).expect("bounded"));
        }
    }) as f64
        / iters as f64;
    println!("sizing_report_analyze                  {:8.1} ns/op", ns);
}

/// The observability ablation: one ADPCM duplicated-network run, engine
/// metrics + detection instrumentation fully off vs fully on. Both arms
/// simulate the identical virtual-time schedule; the difference is pure
/// host-side instrumentation cost.
fn bench_metrics_ablation() {
    let app = App::Adpcm;
    let tokens = 400u64;
    let make_cfg = || {
        app.duplication_config(1, tokens)
            .expect("bounded profile")
            .with_seeds(1, 2)
    };
    let horizon = {
        let cfg = make_cfg();
        cfg.model.producer.period * (tokens + 20)
            + cfg.model.consumer.delay
            + cfg.sizing.selector_detection_bound * 4
            + TimeNs::from_secs(1)
    };
    let factory = app.replica_factory([11, 22]);

    let off_ns = min_elapsed_ns(|| {
        let (net, _ids) = build_duplicated(&make_cfg(), &factory);
        let mut engine = Engine::new(net);
        engine.run_until(horizon);
        black_box(engine.network());
    });
    let mut events = 0u64;
    let on_ns = min_elapsed_ns(|| {
        let registry = MetricsRegistry::new();
        let cfg = make_cfg();
        let (mut net, ids) = build_duplicated(&cfg, &factory);
        let _health = instrument_duplicated(&mut net, &ids, &cfg, &registry);
        let mut engine = Engine::new(net).with_metrics(&registry);
        engine.run_until(horizon);
        black_box(engine.network());
        events = registry.counter("kpn.engine.events").get();
    });
    let delta = on_ns as f64 / off_ns as f64 - 1.0;
    println!(
        "engine run, metrics off                {:8.2} ms/run",
        off_ns as f64 / 1e6
    );
    println!(
        "engine run, metrics on                 {:8.2} ms/run  ({} events, {:+.1}% vs off)",
        on_ns as f64 / 1e6,
        events,
        100.0 * delta
    );
    println!(
        "ablation verdict: instrumentation overhead is {} ({:+.1}%; anything under ~10% is \
         within run-to-run noise of this harness)",
        if delta.abs() < 0.10 {
            "within noise"
        } else {
            "ABOVE noise"
        },
        100.0 * delta
    );
}

fn main() {
    println!("===== E8: per-operation overhead (min of {REPS} reps, {OPS} ops each) =====");
    bench_replicator();
    bench_selector();
    bench_sizing_analysis();
    println!("\n===== E8: observability on/off ablation =====");
    bench_metrics_ablation();
}
