//! E8: criterion microbenches of the framework's per-operation cost —
//! the rigorous version of Table 2's "Runtime" overhead row.

use criterion::{criterion_group, criterion_main, Criterion};
use rtft_core::{Replicator, ReplicatorConfig, Selector, SelectorConfig};
use rtft_kpn::{ChannelBehavior, Payload, Token};
use rtft_rtc::sizing::{DuplicationModel, SizingReport};
use rtft_rtc::{PjdModel, TimeNs};
use std::hint::black_box;

fn tok(seq: u64) -> Token {
    Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
}

fn bench_replicator(c: &mut Criterion) {
    let mut group = c.benchmark_group("replicator");
    group.bench_function("write+2reads", |b| {
        let mut r = Replicator::new("bench", ReplicatorConfig::new([8, 8]));
        let mut i = 0u64;
        b.iter(|| {
            let _ = black_box(r.try_write(0, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(r.try_read(0, TimeNs::from_ns(i)));
            let _ = black_box(r.try_read(1, TimeNs::from_ns(i)));
            i += 1;
        });
    });
    group.bench_function("write_with_divergence_check", |b| {
        let cfg = ReplicatorConfig::new([8, 8]).with_divergence_threshold(4);
        let mut r = Replicator::new("bench", cfg);
        let mut i = 0u64;
        b.iter(|| {
            let _ = black_box(r.try_write(0, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(r.try_read(0, TimeNs::from_ns(i)));
            let _ = black_box(r.try_read(1, TimeNs::from_ns(i)));
            i += 1;
        });
    });
    group.finish();
}

fn bench_selector(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector");
    group.bench_function("pair_write+read", |b| {
        let mut s = Selector::new("bench", SelectorConfig::new([8, 8], 4));
        let mut i = 0u64;
        b.iter(|| {
            let _ = black_box(s.try_write(0, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(s.try_write(1, tok(i), TimeNs::from_ns(i)));
            let _ = black_box(s.try_read(0, TimeNs::from_ns(i)));
            i += 1;
        });
    });
    group.finish();
}

fn bench_sizing_analysis(c: &mut Criterion) {
    // The offline analysis cost (not on the critical path, but the paper's
    // "derived quickly from calibrations" claim deserves a number).
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0),
        PjdModel::from_ms(30.0, 2.0, 90.0),
        [PjdModel::from_ms(30.0, 5.0, 0.0), PjdModel::from_ms(30.0, 30.0, 0.0)],
    );
    c.bench_function("sizing_report_analyze", |b| {
        b.iter(|| black_box(SizingReport::analyze(black_box(&model)).expect("bounded")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_replicator, bench_selector, bench_sizing_analysis
}
criterion_main!(benches);
