//! E12: parallel campaign engine — scenarios/sec vs worker count.
//!
//! Times the same seeded chaos campaign on the sequential inline path and
//! scattered across 2 and 4 workers, verifying on the way that all three
//! reports are byte-identical (the scatter/ordered-gather contract), then
//! measures the DES engine's raw event throughput as a micro-section —
//! the quantity the no-clone write path and pre-sized event queue speed
//! up. Campaign scaling is hardware-dependent: expect ≥1.5× at 4 workers
//! on a multicore host and ≈1.0× on a single-core CI runner.
//!
//! Run with `cargo bench --bench campaign`; emits a machine-readable
//! `BENCH_campaign.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_chaos::Campaign;
use rtft_kpn::{Collector, Engine, Fifo, Network, Payload, PjdSource, PortId};
use rtft_obs::json::JsonObject;
use rtft_obs::MetricsRegistry;
use rtft_rtc::{PjdModel, TimeNs};
use std::time::Instant;

const CAMPAIGN_SEED: u64 = 0xDAC14;
const SCENARIOS: u64 = 96;
const ENGINE_TOKENS: u64 = 200_000;

fn campaign_secs(workers: usize) -> (f64, String) {
    let campaign = Campaign::generate(CAMPAIGN_SEED, SCENARIOS);
    let start = Instant::now();
    let report = campaign.run_with_workers(workers);
    (start.elapsed().as_secs_f64(), report.to_json())
}

fn engine_network() -> Network {
    let mut net = Network::new();
    let link = net.add_channel(Fifo::new("link", 64));
    let model = PjdModel::periodic(TimeNs::from_us(10));
    net.add_process(PjdSource::new(
        "src",
        PortId::of(link),
        model,
        1,
        Some(ENGINE_TOKENS),
        Payload::U64,
    ));
    net.add_process(Collector::new(
        "col",
        PortId::of(link),
        Some(ENGINE_TOKENS as usize),
    ));
    net
}

fn engine_events_per_sec() -> (u64, f64) {
    // Count events once with metrics attached, then time the identical
    // run with metrics off — the configuration the campaigns run in.
    let registry = MetricsRegistry::new();
    let mut counted = Engine::new(engine_network()).with_metrics(&registry);
    counted.run_until(TimeNs::from_secs(30));
    let events = registry.counter("kpn.engine.events").get();

    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut engine = Engine::new(engine_network());
        let start = Instant::now();
        engine.run_until(TimeNs::from_secs(30));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (events, events as f64 / best)
}

fn main() {
    banner("E12: parallel campaign engine — scenarios/sec vs worker count");
    println!(
        "campaign seed {CAMPAIGN_SEED:#x}, {SCENARIOS} scenarios; host \
         reports {} available core(s)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut table = AsciiTable::new();
    table.row(["workers", "wall (s)", "scenarios/sec", "speedup"]);
    let mut rows = Vec::new();
    let mut reference: Option<(f64, String)> = None;
    for workers in [1usize, 2, 4] {
        let (secs, json) = campaign_secs(workers);
        let rate = SCENARIOS as f64 / secs;
        let speedup = reference.as_ref().map_or(1.0, |(base, _)| base / secs);
        if let Some((_, ref_json)) = &reference {
            assert_eq!(
                &json, ref_json,
                "campaign report diverged at workers={workers}"
            );
        } else {
            reference = Some((secs, json));
        }
        table.row([
            workers.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.1}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push((workers, secs, rate, speedup));
    }
    print!("{}", table.render());
    println!("\nall three reports byte-identical — ordered gather verified\n");

    let (events, events_per_sec) = engine_events_per_sec();
    println!(
        "engine micro: {ENGINE_TOKENS} tokens through a FIFO pipeline, \
         {events} events, {:.2} Mevents/s (no-clone accepted-write path)",
        events_per_sec / 1e6
    );

    let mut obj = JsonObject::new()
        .str_field("bench", "parallel_campaign")
        .u64_field("scenarios", SCENARIOS);
    for (workers, secs, rate, speedup) in &rows {
        obj = obj.raw_field(
            &format!("workers_{workers}"),
            &JsonObject::new()
                .u64_field("wall_us", (secs * 1e6) as u64)
                .u64_field("scenarios_per_sec", *rate as u64)
                .u64_field("speedup_x100", (speedup * 100.0) as u64)
                .finish(),
        );
    }
    let line = obj
        .u64_field("engine_events", events)
        .u64_field("engine_events_per_sec", events_per_sec as u64)
        .finish();
    println!("\nBENCH_campaign.json: {line}");
}
