//! Regenerates the MJPEG block of Table 2.

use rtft_apps::networks::App;

fn main() {
    rtft_bench::tables::print_table2(App::Mjpeg, rtft_bench::tables::paper_table2(App::Mjpeg));
}
