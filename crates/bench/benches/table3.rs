//! Regenerates Table 3 (comparison with the distance-function approach).

fn main() {
    rtft_bench::tables::print_table3();
}
