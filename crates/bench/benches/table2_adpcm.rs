//! Regenerates the ADPCM block of Table 2.

use rtft_apps::networks::App;

fn main() {
    rtft_bench::tables::print_table2(App::Adpcm, rtft_bench::tables::paper_table2(App::Adpcm));
}
