//! E10: chaos campaign — detection latency by fault kind.
//!
//! Runs a 150-scenario deterministic campaign over the full fault palette
//! (every Table 1 application, both redundancy structures, all three
//! platforms) and reports, per fault kind, how many scenarios were latched
//! and the p50/p99/max detection latency — the empirical counterpart of
//! the closed-form bound table in `rtft_rtc::DetectionBounds`. The
//! campaign is entirely virtual-time, so every number here is exactly
//! reproducible from the seed.
//!
//! Run with `cargo bench --bench chaos`; emits a machine-readable
//! `BENCH_chaos.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_chaos::{Campaign, OutcomeClass};

const CAMPAIGN_SEED: u64 = 0xDAC14;
const SCENARIOS: u64 = 150;

const KINDS: [&str; 6] = [
    "fail-stop",
    "slow-by",
    "corrupt",
    "transient",
    "intermittent",
    "omission",
];

fn main() {
    banner("E10: chaos campaign — detection latency by fault kind");
    println!(
        "campaign seed {CAMPAIGN_SEED:#x}, {SCENARIOS} scenarios \
         (3 apps x 2 structures x 3 platforms x 7 fault kinds)\n"
    );

    let report = Campaign::generate(CAMPAIGN_SEED, SCENARIOS).run();

    let mut classes = AsciiTable::new();
    classes.row(["outcome class", "count"]);
    for class in OutcomeClass::ALL {
        classes.row([class.label().to_string(), report.count(class).to_string()]);
    }
    print!("{}", classes.render());
    println!();

    let mut latency = AsciiTable::new();
    latency.row(["fault kind", "latched", "p50 (ms)", "p99 (ms)", "max (ms)"]);
    for kind in KINDS {
        let snap = report.latency_snapshot(kind);
        if snap.count == 0 {
            latency.row([
                kind.to_string(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        } else {
            latency.row([
                kind.to_string(),
                snap.count.to_string(),
                format!("{:.1}", snap.p50 as f64 / 1e6),
                format!("{:.1}", snap.p99 as f64 / 1e6),
                format!("{:.1}", snap.max as f64 / 1e6),
            ]);
        }
    }
    print!("{}", latency.render());
    println!();
    println!(
        "silent failures are the timing selector's known blind spots \
         (corruption/omission without voting); permanent timing faults: \
         {} in bound, {} late",
        report.count(OutcomeClass::DetectedInBound),
        report.count(OutcomeClass::DetectedLate)
    );

    println!("BENCH_chaos.json: {}", report.bench_line());
}
