//! Regenerates the H.264 block of Table 2 — the paper ran this experiment
//! but omitted the numbers for space (§4.2); we publish them as an
//! extension.

use rtft_apps::networks::App;

fn main() {
    rtft_bench::tables::print_table2(App::H264, None);
}
