//! E13: write-ahead log overhead — append throughput, group-commit
//! batching, and recovery scan rate.
//!
//! Three measurements over the real segment files on real disk:
//!
//! * **Append path** (fsync off): raw records/sec and MB/s through
//!   encode + checksum + segment write, the cost every accepted batch
//!   pays before anything touches the platter.
//! * **Group commit** (fsync on): concurrent writers share one leader
//!   fsync per commit wave; the interesting number is appends-per-fsync
//!   — the batching factor that keeps durable ingestion off the
//!   one-fsync-per-record cliff.
//! * **Recovery scan**: reopening the log replays every record through
//!   checksum verification; the scan rate bounds restart time.
//!
//! Run with `cargo bench --bench wal`; emits a machine-readable
//! `BENCH_wal.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_obs::json::{array, JsonObject};
use rtft_wal::{Wal, WalConfig, WalRecord};
use std::time::Instant;

const APPEND_RECORDS: usize = 4096;
const PAYLOAD_BYTES: usize = 1024;
const COMMIT_WRITERS: [usize; 3] = [1, 4, 8];
const COMMIT_RECORDS_PER_WRITER: usize = 64;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtft-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn record(stream: u32, n: usize) -> WalRecord {
    WalRecord::Tokens {
        stream,
        payloads: vec![rtft_kpn::Bytes::from(vec![n as u8; PAYLOAD_BYTES])],
    }
}

struct CommitPoint {
    writers: usize,
    appends_per_fsync: f64,
    records_per_sec: f64,
}

fn run_commit_point(writers: usize) -> CommitPoint {
    let dir = scratch(&format!("commit-{writers}"));
    let (wal, _) = Wal::open(WalConfig::new(&dir)).expect("open");
    let wal = std::sync::Arc::new(wal);
    let start = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let wal = std::sync::Arc::clone(&wal);
            std::thread::spawn(move || {
                for n in 0..COMMIT_RECORDS_PER_WRITER {
                    wal.append(&record(w as u32, n)).expect("append");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let appends = wal.registry().counter("wal.appends").get();
    let fsyncs = wal.registry().counter("wal.fsyncs").get().max(1);
    let total = (writers * COMMIT_RECORDS_PER_WRITER) as f64;
    let point = CommitPoint {
        writers,
        appends_per_fsync: appends as f64 / fsyncs as f64,
        records_per_sec: total / elapsed,
    };
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() {
    banner("E13: write-ahead log overhead");

    // Append path, no fsync: encode + checksum + write.
    let dir = scratch("append");
    let (wal, _) = Wal::open(WalConfig::new(&dir).with_fsync(false)).expect("open");
    let start = Instant::now();
    for n in 0..APPEND_RECORDS {
        wal.append(&record(0, n)).expect("append");
    }
    wal.sync().expect("sync");
    let elapsed = start.elapsed().as_secs_f64();
    let append_records_per_sec = APPEND_RECORDS as f64 / elapsed;
    let append_mb_per_sec = (APPEND_RECORDS * PAYLOAD_BYTES) as f64 / elapsed / 1e6;
    drop(wal);
    println!(
        "append (fsync off): {APPEND_RECORDS} x {PAYLOAD_BYTES} B records, \
         {append_records_per_sec:.0} records/sec, {append_mb_per_sec:.1} MB/s\n"
    );

    // Recovery: reopen the log just written and scan every record.
    let (wal, recovery) = Wal::open(WalConfig::new(&dir)).expect("reopen");
    let scanned = recovery.records.len() as f64;
    let recovery_records_per_sec = scanned / (recovery.recovery_ns.max(1) as f64 / 1e9);
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "recovery scan: {scanned:.0} records across {} segment(s) in {:.2} ms, \
         {recovery_records_per_sec:.0} records/sec\n",
        recovery.segments,
        recovery.recovery_ns as f64 / 1e6
    );

    // Group commit under concurrent writers, fsync on.
    let points: Vec<CommitPoint> = COMMIT_WRITERS
        .iter()
        .map(|&w| run_commit_point(w))
        .collect();
    let mut table = AsciiTable::new();
    table.row(["writers", "appends/fsync", "records/sec (fsync on)"]);
    for p in &points {
        table.row([
            p.writers.to_string(),
            format!("{:.1}", p.appends_per_fsync),
            format!("{:.0}", p.records_per_sec),
        ]);
    }
    println!("{}", table.render());

    let json = JsonObject::new()
        .f64_field("append_records_per_sec", append_records_per_sec)
        .f64_field("append_mb_per_sec", append_mb_per_sec)
        .f64_field("recovery_records_per_sec", recovery_records_per_sec)
        .raw_field(
            "group_commit",
            &array(points.iter().map(|p| {
                JsonObject::new()
                    .u64_field("writers", p.writers as u64)
                    .f64_field("appends_per_fsync", p.appends_per_fsync)
                    .f64_field("records_per_sec", p.records_per_sec)
                    .finish()
            })),
        )
        .finish();
    println!("BENCH_wal.json: {json}");
}
