//! E17: hot-path overhaul — calendar-queue engine throughput, E11-style
//! p99 flush latency, and payload-pool hit rate.
//!
//! Three sections, one per layer of the overhaul:
//!
//! 1. **Engine micro** — the E12 pipeline (PjdSource → Fifo(64) →
//!    Collector, 200k tokens) timed under both schedulers: the legacy
//!    binary heap and the calendar queue. The ratio is the headline
//!    number the ISSUE targets (≥3x over the ~9.4 Mevents/s heap
//!    baseline).
//! 2. **Flush latency** — the E11 serving path (real loopback TCP,
//!    ADPCM batches, full round trip through fleet admission and the
//!    DES run) at a fixed connection count, reporting p50/p99 per
//!    flush.
//! 3. **Pool hit rate** — steady-state recycling through the global
//!    payload pool while the server runs, from the rtft-obs counters.
//!
//! Run with `cargo bench --bench e17`; emits a machine-readable
//! `BENCH_e17.json:` line and writes `BENCH_e17.json` at the workspace
//! root for trend tracking (the CI perf smoke reads its floor from it).

use rtft_apps::networks::App;
use rtft_bench::report::{banner, AsciiTable};
use rtft_fleet::FleetConfig;
use rtft_kpn::{Collector, Engine, Fifo, Network, Payload, PjdSource, PortId, QueueKind};
use rtft_obs::json::JsonObject;
use rtft_obs::{Histogram, MetricsRegistry};
use rtft_rtc::{PjdModel, TimeNs};
use rtft_serve::{workload, Client, Server, ServerConfig};
use std::time::{Duration, Instant};

const ENGINE_TOKENS: u64 = 200_000;
const CONNECTIONS: usize = 4;
const FLUSHES_PER_CONNECTION: usize = 8;
const TOKENS_PER_FLUSH: usize = 16;

fn engine_network() -> Network {
    let mut net = Network::new();
    let link = net.add_channel(Fifo::new("link", 64));
    let model = PjdModel::periodic(TimeNs::from_us(10));
    net.add_process(PjdSource::new(
        "src",
        PortId::of(link),
        model,
        1,
        Some(ENGINE_TOKENS),
        Payload::U64,
    ));
    net.add_process(Collector::new(
        "col",
        PortId::of(link),
        Some(ENGINE_TOKENS as usize),
    ));
    net
}

/// Events/sec for the current scheduler; best of eight metric-free runs
/// (the box this runs on is shared, so individual runs see multi-ms
/// scheduling noise on a ~10 ms workload).
fn engine_events_per_sec(kind: QueueKind) -> (u64, f64) {
    let registry = MetricsRegistry::new();
    let mut counted = Engine::new(engine_network())
        .with_queue(kind)
        .with_metrics(&registry);
    counted.run_until(TimeNs::from_secs(30));
    let events = registry.counter("kpn.engine.events").get();

    let mut best = f64::INFINITY;
    for _ in 0..8 {
        let mut engine = Engine::new(engine_network()).with_queue(kind);
        let start = Instant::now();
        engine.run_until(TimeNs::from_secs(30));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (events, events as f64 / best)
}

struct PoolPoint {
    hits: u64,
    misses: u64,
    recycled: u64,
    hit_rate: f64,
}

/// Steady-state recycling through the server's payload pool: identical
/// send/flush rounds so settled batches are parked, reclaimed, and
/// re-issued to later frame reads. Counters come off the server's
/// rtft-obs registry (`kpn.pool.*`).
fn pool_hit_rate() -> PoolPoint {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr(), "e17-pool").expect("connect");
    let stream = client
        .open_stream(App::Adpcm, 2)
        .expect("open")
        .expect_stream();
    let batch = workload(App::Adpcm, 17, 32);
    for _ in 0..32 {
        client.send_tokens(stream, &batch).expect("send");
        loop {
            let run = client.flush(stream).expect("flush");
            if run.busy.is_some() {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            break;
        }
    }
    client.close(stream).expect("close");
    let hits = server.registry().counter("kpn.pool.hits").get();
    let misses = server.registry().counter("kpn.pool.misses").get();
    let recycled = server.registry().counter("kpn.pool.recycled").get();
    let report = server.shutdown();
    assert!(report.balanced(), "token accounting must balance");
    PoolPoint {
        hits,
        misses,
        recycled,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

struct FlushPoint {
    tokens_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn flush_latency() -> FlushPoint {
    let cfg = ServerConfig {
        fleet: FleetConfig {
            workers: 4,
            pending_capacity: CONNECTIONS.max(4),
            max_replacements: 0,
        },
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("bind");
    let addr = server.addr();

    let start = Instant::now();
    let handles: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, &format!("e17-{c}")).expect("connect");
                let stream = client
                    .open_stream(App::Adpcm, 2)
                    .expect("open")
                    .expect_stream();
                let latency = Histogram::new();
                let mut delivered = 0u64;
                for f in 0..FLUSHES_PER_CONNECTION {
                    let batch = workload(App::Adpcm, (c * 31 + f) as u64, TOKENS_PER_FLUSH);
                    client.send_tokens(stream, &batch).expect("send");
                    let t0 = Instant::now();
                    loop {
                        let run = client.flush(stream).expect("flush");
                        if run.busy.is_some() {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        delivered += run.outputs.len() as u64;
                        latency.record(t0.elapsed().as_nanos() as u64);
                        break;
                    }
                }
                client.close(stream).expect("close");
                (delivered, latency)
            })
        })
        .collect();

    let mut delivered = 0u64;
    let latency = Histogram::new();
    for handle in handles {
        let (d, h) = handle.join().expect("client thread");
        delivered += d;
        latency.merge_from(&h);
    }
    let elapsed = start.elapsed().as_secs_f64();

    let report = server.shutdown();
    assert!(report.balanced(), "token accounting must balance");
    let expected = (CONNECTIONS * FLUSHES_PER_CONNECTION * TOKENS_PER_FLUSH) as u64;
    assert_eq!(delivered, expected, "every token must come back");

    let snap = latency.snapshot();
    FlushPoint {
        tokens_per_sec: delivered as f64 / elapsed,
        p50_ms: snap.p50 as f64 / 1e6,
        p99_ms: snap.p99 as f64 / 1e6,
    }
}

/// `BENCH_e17.json` at the workspace root (cargo runs benches with the
/// package directory as cwd, so relative paths are anchored explicitly).
fn floor_file() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e17.json")
}

/// CI perf smoke: re-runs the engine micro and fails on a >30%
/// regression against the `engine_events_per_sec` floor checked in as
/// `BENCH_e17.json`. Invoked as `cargo bench --bench e17 -- --ci-smoke
/// [floor-file]`.
fn ci_smoke(floor_path: &std::path::Path) -> ! {
    let floor_path = floor_path.display().to_string();
    let floor_json = std::fs::read_to_string(&floor_path)
        .unwrap_or_else(|e| panic!("read perf floor {floor_path}: {e}"));
    let key = "\"engine_events_per_sec\":";
    let at = floor_json
        .find(key)
        .unwrap_or_else(|| panic!("{floor_path} has no engine_events_per_sec field"));
    let floor: f64 = floor_json[at + key.len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric engine_events_per_sec");

    let (_, eps) = engine_events_per_sec(QueueKind::Calendar);
    let allowed = floor * 0.7;
    println!(
        "E12 perf smoke: {:.2} Mevents/s measured, floor {:.2} (fail below {:.2})",
        eps / 1e6,
        floor / 1e6,
        allowed / 1e6
    );
    if eps < allowed {
        eprintln!(
            "PERF SMOKE FAILED: engine micro regressed >30% vs the checked-in floor \
             ({:.2} < {:.2} Mevents/s)",
            eps / 1e6,
            allowed / 1e6
        );
        std::process::exit(1);
    }
    println!("PERF SMOKE OK");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(at) = args.iter().position(|a| a == "--ci-smoke") {
        // Cargo appends harness flags like `--bench` after user args;
        // only a non-flag argument is a floor-file override.
        match args.get(at + 1).filter(|a| !a.starts_with('-')) {
            Some(path) => ci_smoke(std::path::Path::new(path)),
            None => ci_smoke(&floor_file()),
        }
    }

    banner("E17: hot-path overhaul — engine, flush latency, pool");

    let (events, eps) = engine_events_per_sec(QueueKind::Calendar);
    let (_, heap_eps) = engine_events_per_sec(QueueKind::Heap);
    let mevents = eps / 1e6;
    println!(
        "engine micro: {ENGINE_TOKENS} tokens, {events} events, {mevents:.2} Mevents/s \
         (heap scheduler in this build: {:.2})",
        heap_eps / 1e6
    );

    let flush = flush_latency();
    let pool = pool_hit_rate();

    let mut table = AsciiTable::new();
    table
        .row(["section", "metric", "value"])
        .row(["engine", "Mevents/s", &format!("{mevents:.2}")])
        .row(["flush", "tokens/s", &format!("{:.0}", flush.tokens_per_sec)])
        .row(["flush", "p50 ms", &format!("{:.2}", flush.p50_ms)])
        .row(["flush", "p99 ms", &format!("{:.2}", flush.p99_ms)])
        .row(["pool", "hit rate", &format!("{:.3}", pool.hit_rate)])
        .row(["pool", "recycled", &format!("{}", pool.recycled)]);
    print!("{}", table.render());

    let json = JsonObject::new()
        .str_field("bench", "e17_hot_path")
        .u64_field("engine_events", events)
        .u64_field("engine_events_per_sec", eps as u64)
        .u64_field("engine_heap_events_per_sec", heap_eps as u64)
        .u64_field("flush_tokens_per_sec", flush.tokens_per_sec as u64)
        .f64_field("flush_p50_ms", flush.p50_ms)
        .f64_field("flush_p99_ms", flush.p99_ms)
        .u64_field("pool_hits", pool.hits)
        .u64_field("pool_misses", pool.misses)
        .u64_field("pool_recycled", pool.recycled)
        .f64_field("pool_hit_rate", pool.hit_rate)
        .finish();
    println!("\nBENCH_e17.json: {json}");
    if let Err(e) = std::fs::write(floor_file(), format!("{json}\n")) {
        eprintln!("warning: could not write BENCH_e17.json: {e}");
    }
}
