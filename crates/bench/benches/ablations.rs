//! E9 ablations: the design-choice experiments DESIGN.md §5 calls out.
//!
//! 1. §1.1 motivational example — fault detection disabled reproduces the
//!    deadlock/starvation the paper motivates the framework with.
//! 2. Threshold sweep — detection latency as a function of the divergence
//!    threshold `D` (eq. (6): latency grows with `2D − 1`).
//! 3. Detector split — divergence-only vs stall-only selector detection.
//! 4. Jitter diversity sweep — the analytic bound as a function of the
//!    slow replica's jitter.

use rtft_bench::report::{banner, ms, AsciiTable};
use rtft_core::{
    build_duplicated, DuplicationConfig, FaultPlan, JitterStageReplica, Replicator,
    ReplicatorConfig, Selector, SelectorConfig,
};
use rtft_kpn::{Engine, Payload};
use rtft_rtc::sizing::{DuplicationModel, SizingReport};
use rtft_rtc::{detection, PjdModel, TimeNs};
use std::sync::Arc;

fn base_model() -> DuplicationModel {
    DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0),
        PjdModel::from_ms(30.0, 2.0, 90.0),
        [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    )
}

fn base_config(tokens: u64) -> DuplicationConfig {
    DuplicationConfig::from_model(base_model())
        .expect("bounded")
        .with_token_count(tokens)
        .with_payload(Arc::new(Payload::U64))
        .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(2)))
}

fn ablation_deadlock() {
    banner("Ablation 1: §1.1 motivational example (detection on vs off)");
    let tokens = 150u64;
    let factory = JitterStageReplica::from_model(&base_model()).with_seeds([3, 4]);

    let run = |detection_enabled: bool| -> usize {
        let cfg = base_config(tokens);
        let (mut net, ids) = build_duplicated(&cfg, &factory);
        if !detection_enabled {
            let caps = cfg.sizing;
            *net.channel_mut(ids.replicator)
                .as_any_mut()
                .downcast_mut::<Replicator>()
                .expect("replicator") = Replicator::new(
                "replicator",
                ReplicatorConfig::new([
                    caps.replicator_capacity[0] as usize,
                    caps.replicator_capacity[1] as usize,
                ])
                .without_detection(),
            );
            *net.channel_mut(ids.selector)
                .as_any_mut()
                .downcast_mut::<Selector>()
                .expect("selector") = Selector::new(
                "selector",
                SelectorConfig::without_detection([
                    caps.selector_capacity[0] as usize,
                    caps.selector_capacity[1] as usize,
                ]),
            );
        }
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        ids.consumer_arrivals(engine.network()).len()
    };

    let with = run(true);
    let without = run(false);
    println!("tokens delivered with detection   : {with}/{tokens}");
    println!("tokens delivered without detection: {without}/{tokens} (producer blocks on the dead replica's full queue; consumer starves)");
    assert!(with as u64 == tokens && without < tokens as usize);
}

fn ablation_threshold_sweep() {
    banner("Ablation 2: detection latency vs divergence threshold D (eq. (6))");
    let factory = JitterStageReplica::from_model(&base_model()).with_seeds([5, 6]);
    let mut t = AsciiTable::new();
    t.row(["D", "analytic bound (ms)", "measured selector latency (ms)"]);
    for d in 2..=8u64 {
        let mut cfg = base_config(200);
        cfg.sizing.selector_threshold = d;
        // Keep capacities large enough that the bigger threshold never
        // blocks the healthy replica.
        cfg.sizing.selector_capacity = [d + 6, d + 8];
        let bound = detection::fail_stop_detection_bound(
            &[cfg.model.replica_out[0], cfg.model.replica_out[1]],
            d,
        );
        let (net, ids) = build_duplicated(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let lat = ids.selector_faults(engine.network())[0]
            .map(|f| f.at.saturating_sub(TimeNs::from_secs(2)));
        t.row([
            d.to_string(),
            ms(bound),
            lat.map(ms).unwrap_or_else(|| "not detected".to_owned()),
        ]);
    }
    print!("{}", t.render());
    println!("Latency and bound both grow with D — the trade-off between detection speed and");
    println!("divergence tolerance the threshold encodes.");
}

fn ablation_detector_split() {
    banner("Ablation 3: selector divergence-only vs stall-only detection");
    let factory = JitterStageReplica::from_model(&base_model()).with_seeds([7, 8]);
    let mut t = AsciiTable::new();
    t.row(["Detector", "latency (ms)", "cause"]);
    for (label, divergence, stall) in [
        ("both", true, true),
        ("divergence only", true, false),
        ("stall only", false, true),
    ] {
        let cfg = base_config(200);
        let d = cfg.sizing.selector_threshold;
        let (mut net, ids) = build_duplicated(&cfg, &factory);
        let mut sel_cfg = SelectorConfig::new(
            [
                cfg.sizing.selector_capacity[0] as usize,
                cfg.sizing.selector_capacity[1] as usize,
            ],
            d,
        );
        if !divergence {
            sel_cfg.divergence_threshold = None;
        }
        if !stall {
            sel_cfg = sel_cfg.without_stall_detection();
        }
        *net.channel_mut(ids.selector)
            .as_any_mut()
            .downcast_mut::<Selector>()
            .expect("sel") = Selector::new("selector", sel_cfg);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        match ids.selector_faults(engine.network())[0] {
            Some(f) => t.row([
                label.to_owned(),
                ms(f.at.saturating_sub(TimeNs::from_secs(2))),
                format!("{:?}", f.cause),
            ]),
            None => t.row([label.to_owned(), "not detected".to_owned(), "-".to_owned()]),
        };
    }
    print!("{}", t.render());
}

fn ablation_jitter_sweep() {
    banner("Ablation 4: analytic sizing vs the slow replica's jitter");
    let mut t = AsciiTable::new();
    t.row(["J2 (ms)", "|R2|", "|S2|", "D", "detection bound (ms)"]);
    for j2 in [5u64, 15, 30, 60, 90] {
        let model = DuplicationModel::symmetric(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 90.0),
            [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::new(TimeNs::from_ms(30), TimeNs::from_ms(j2), TimeNs::ZERO),
            ],
        );
        let s = SizingReport::analyze(&model).expect("bounded");
        t.row([
            j2.to_string(),
            s.replicator_capacity[1].to_string(),
            s.selector_capacity[1].to_string(),
            s.selector_threshold.to_string(),
            ms(s.selector_detection_bound),
        ]);
    }
    print!("{}", t.render());
    println!("Design diversity (larger J2) buys independence but costs buffer space and");
    println!("detection latency — the dimensioning trade-off of §3.4.");
}

fn ablation_n_modular() {
    banner("Ablation 5: n-replica generalisation (paper §1's future-work claim)");
    use rtft_core::nmodular::{build_n_modular, NModularModel, NSizingReport};
    use rtft_core::{FaultyProcess, ReplicaFactory};
    use rtft_kpn::{Fifo, Network, NodeId, PjdShaper, PortId, Transform};

    struct Stage(Vec<PjdModel>);
    impl ReplicaFactory for Stage {
        fn build(
            &self,
            net: &mut Network,
            input: PortId,
            output: PortId,
            replica: usize,
            fault: FaultPlan,
        ) -> Vec<NodeId> {
            let mid = net.add_channel(Fifo::new(format!("r{replica}.mid"), 4));
            let t = Transform::new(
                format!("r{replica}.stage"),
                input,
                PortId::of(mid),
                TimeNs::from_ms(2),
                TimeNs::ZERO,
                replica as u64,
                |p| p,
            );
            let a = net.add_process(FaultyProcess::new(t, fault));
            let b = net.add_process(PjdShaper::new(
                format!("r{replica}.shaper"),
                PortId::of(mid),
                output,
                self.0[replica].with_delay(TimeNs::from_ms(5)),
                replica as u64 + 99,
            ));
            vec![a, b]
        }
    }

    let model = NModularModel {
        producer: PjdModel::from_ms(30.0, 2.0, 0.0),
        consumer: PjdModel::from_ms(30.0, 2.0, 120.0),
        replicas: vec![
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 15.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    };
    let sizing = NSizingReport::analyze(&model).expect("bounded");
    println!(
        "triplicated: caps R{:?} S{:?}, D = {}, bound = {}",
        sizing.replicator_capacity,
        sizing.selector_capacity,
        sizing.threshold,
        ms(sizing.detection_bound)
    );
    let tokens = 200u64;
    let faults = vec![
        FaultPlan::fail_stop_at(TimeNs::from_secs(2)),
        FaultPlan::fail_stop_at(TimeNs::from_secs(4)),
        FaultPlan::healthy(),
    ];
    let (net, ids) = build_n_modular(
        &model,
        &sizing,
        tokens,
        (1, 2),
        Arc::new(Payload::U64),
        &Stage(model.replicas.clone()),
        &faults,
    );
    let mut engine = Engine::new(net);
    engine.run_until(TimeNs::from_secs(30));
    let delivered = ids.consumer_arrivals(engine.network()).len();
    println!(
        "two staggered fail-stops (t = 2 s, 4 s) in a 3-replica network: {delivered}/{tokens} tokens delivered"
    );
    assert_eq!(delivered as u64, tokens);
}

fn main() {
    ablation_deadlock();
    ablation_threshold_sweep();
    ablation_detector_split();
    ablation_jitter_sweep();
    ablation_n_modular();
}
