//! E16: the sampled-checker frontier — detection bound vs compute cost
//! across the sampling stride k ∈ {1, 4, 16, 64}.
//!
//! For each stride a seeded hetero chaos campaign runs the full fault
//! palette (fail-stop on either side, slow-down, corruption, omission,
//! transients, fault-free) and the sweep asserts the structure's
//! contract: every latch inside the k-dependent closed-form bound, zero
//! silent failures, zero false positives, and a compute factor `1 + 1/k`
//! strictly below duplication's `2.0` for every `k > 1`.
//!
//! Run with `cargo bench --bench hetero`; emits a machine-readable
//! `BENCH_hetero.json:` line for trend tracking.

use rtft_bench::hetero::{hetero_frontier, HETERO_SWEEP_KS};
use rtft_bench::report::{banner, AsciiTable};
use rtft_chaos::Campaign;
use rtft_obs::json::JsonObject;

const SWEEP_SEED: u64 = 0xE16;
const SCENARIOS_PER_K: u64 = 24;

/// Duplication's execution-slot cost, the ceiling every frontier point
/// must undercut.
const DUPLICATED_COMPUTE: f64 = 2.0;

fn main() {
    banner("E16: sampled-checker frontier — detection bound vs compute, k sweep");
    println!(
        "seed {SWEEP_SEED:#x}, {SCENARIOS_PER_K} scenarios per stride, \
         strides {HETERO_SWEEP_KS:?} (duplicated compute baseline {DUPLICATED_COMPUTE:.1}x)\n"
    );

    let points = hetero_frontier(SWEEP_SEED, SCENARIOS_PER_K, &HETERO_SWEEP_KS);

    let mut table = AsciiTable::new();
    table.row([
        "k",
        "compute x",
        "sampled bound (ms)",
        "value bound (ms)",
        "in-bound",
        "masked",
        "late/silent/fp",
        "max latency (ms)",
    ]);
    for p in &points {
        table.row([
            p.k.to_string(),
            format!("{:.3}", p.compute_factor),
            format!("{:.1}", p.sampled_bound.as_ms_f64()),
            format!("{:.1}", p.value_bound.as_ms_f64()),
            format!("{}/{}", p.detected_in_bound, p.scenarios),
            p.masked.to_string(),
            format!(
                "{}/{}/{}",
                p.detected_late, p.silent_failures, p.false_positives
            ),
            format!("{:.1}", p.max_latency.as_ms_f64()),
        ]);
    }
    print!("{}", table.render());

    for p in &points {
        assert_eq!(p.detected_late, 0, "k={}: latch past the bound", p.k);
        assert_eq!(p.silent_failures, 0, "k={}: silent failure", p.k);
        assert_eq!(p.false_positives, 0, "k={}: healthy replica latched", p.k);
        assert_eq!(
            p.detected_in_bound + p.masked,
            p.scenarios,
            "k={}: every scenario detected in bound or masked",
            p.k
        );
        assert!(
            p.compute_factor <= DUPLICATED_COMPUTE,
            "k={}: compute factor above duplication",
            p.k
        );
        if p.k > 1 {
            assert!(
                p.compute_factor < DUPLICATED_COMPUTE,
                "k={}: sampling must be strictly cheaper than duplication",
                p.k
            );
        }
    }
    for w in points.windows(2) {
        assert!(
            w[1].compute_factor < w[0].compute_factor,
            "compute factor falls with k"
        );
        assert!(
            w[1].sampled_bound > w[0].sampled_bound,
            "sampled bound grows with k"
        );
    }
    println!(
        "\nall latches in bound; compute factor {:.3}x..{:.3}x, all < {DUPLICATED_COMPUTE:.1}x duplicated",
        points.last().expect("non-empty sweep").compute_factor,
        points[0].compute_factor,
    );

    // Determinism spot check: the k=4 campaign report is byte-identical
    // across runs of the same seed (the chaos replay contract, extended
    // to the hetero generator).
    let a = Campaign::generate_hetero(SWEEP_SEED, SCENARIOS_PER_K, 4)
        .run()
        .to_json();
    let b = Campaign::generate_hetero(SWEEP_SEED, SCENARIOS_PER_K, 4)
        .run()
        .to_json();
    assert_eq!(a, b, "hetero campaign report must be seed-stable");
    println!("k=4 campaign report byte-identical across two runs\n");

    let mut obj = JsonObject::new()
        .str_field("bench", "hetero_frontier")
        .u64_field("seed", SWEEP_SEED)
        .u64_field("scenarios_per_k", SCENARIOS_PER_K);
    for p in &points {
        obj = obj.raw_field(
            &format!("k_{}", p.k),
            &JsonObject::new()
                .u64_field("compute_x1000", (p.compute_factor * 1000.0) as u64)
                .u64_field("sampled_bound_ns", p.sampled_bound.as_ns())
                .u64_field("value_bound_ns", p.value_bound.as_ns())
                .u64_field("permanent_bound_ns", p.permanent_bound.as_ns())
                .u64_field("detected_in_bound", p.detected_in_bound as u64)
                .u64_field("masked", p.masked as u64)
                .u64_field("max_latency_ns", p.max_latency.as_ns())
                .finish(),
        );
    }
    println!("BENCH_hetero.json: {}", obj.finish());
}
