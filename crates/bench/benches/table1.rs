//! Regenerates Table 1 (experiment parameters). Run with
//! `cargo bench -p rtft-bench --bench table1`.

fn main() {
    rtft_bench::tables::print_table1();
}
