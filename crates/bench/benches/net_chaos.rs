//! E15: serving throughput under network chaos — sustained accepted
//! tokens/sec and detection-latency p99 versus connection count and
//! hostile-client share.
//!
//! Each point runs one full `rtft_chaos::net` wave: a hardened live
//! server (read deadlines, tenancy, write-ahead log) under 64 or 256
//! concurrent connections, with either no hostile clients (the clean
//! baseline) or ~10% of them injecting the full network-fault palette
//! (replica faults, sampled-checker faults, slow-loris stalls, malformed
//! frames, partial writes, abrupt disconnects, quota storms). The
//! interesting number is the
//! *cost of hostility*: how much sustained ingest the well-behaved
//! clients lose while the server is busy evicting, failing closed, and
//! refusing quota storms — with every wave still required to end with
//! balanced books and a clean WAL replay.
//!
//! Run with `cargo bench --bench net_chaos`; emits a machine-readable
//! `BENCH_net_chaos.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_chaos::{run_net_chaos, NetChaosConfig};
use rtft_obs::json::{array, JsonObject};
use rtft_obs::Histogram;
use std::path::PathBuf;

const CONNECTIONS: [u32; 2] = [64, 256];
/// Hostile share per point: none (baseline) and ~10%, rounded to a
/// multiple of seven so every fault kind appears equally often.
fn hostile_for(connections: u32, hostile: bool) -> u32 {
    if !hostile {
        return 0;
    }
    (connections / 10 / 7).max(1) * 7
}

struct ChaosPoint {
    connections: u32,
    hostile: u32,
    accepted_per_sec: f64,
    delivered: u64,
    rejected: u64,
    evictions: u64,
    detection_p99_ms: f64,
    wall_s: f64,
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rtft-bench-net-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_point(connections: u32, hostile: bool) -> ChaosPoint {
    let cfg = NetChaosConfig {
        seed: 0xDAC14,
        connections,
        hostile: hostile_for(connections, hostile),
        tokens_per_batch: 8,
        batches: 2,
        wal: true,
    };
    let dir = scratch(&format!("{connections}-{}", cfg.hostile));
    let report = run_net_chaos(&cfg, &dir).expect("chaos wave");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        report.violations.is_empty(),
        "bench waves must stay invariant-clean:\n{}",
        report.violations.join("\n")
    );
    assert!(report.replay_clean, "WAL replay must certify the wave");

    let latency = Histogram::new();
    for l in report.detection_latencies() {
        latency.record(l);
    }
    ChaosPoint {
        connections,
        hostile: cfg.hostile,
        accepted_per_sec: report.accepted_tokens() as f64 / report.elapsed.as_secs_f64(),
        delivered: report.delivered_tokens(),
        rejected: report.rejected_tokens(),
        evictions: report.evictions,
        detection_p99_ms: latency.snapshot().p99 as f64 / 1e6,
        wall_s: report.elapsed.as_secs_f64(),
    }
}

fn main() {
    banner("E15: ingestion under network chaos (hostile clients vs clean baseline)");
    println!(
        "full chaos wave per point: WAL + tenancy + read deadlines, 2 batches x 8 tokens \
         per connection; detection p99 is DES-virtual latency of injected replica/checker faults\n"
    );

    let mut points = Vec::new();
    for &connections in &CONNECTIONS {
        for hostile in [false, true] {
            points.push(run_point(connections, hostile));
        }
    }

    let mut table = AsciiTable::new();
    table.row([
        "connections",
        "hostile",
        "accepted tokens/s",
        "delivered",
        "rejected",
        "evictions",
        "detect p99 (ms)",
        "wall (s)",
    ]);
    for p in &points {
        table.row([
            p.connections.to_string(),
            p.hostile.to_string(),
            format!("{:.0}", p.accepted_per_sec),
            p.delivered.to_string(),
            p.rejected.to_string(),
            p.evictions.to_string(),
            if p.hostile == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", p.detection_p99_ms)
            },
            format!("{:.2}", p.wall_s),
        ]);
    }
    println!("{}", table.render());

    // The headline ratio: hostile-wave sustained ingest relative to the
    // clean baseline at the same connection count.
    for pair in points.chunks(2) {
        let [clean, hostile] = pair else { continue };
        println!(
            "{} connections: hostile wave sustains {:.0}% of clean ingest",
            clean.connections,
            100.0 * hostile.accepted_per_sec / clean.accepted_per_sec
        );
    }

    let json = JsonObject::new()
        .raw_field(
            "points",
            &array(points.iter().map(|p| {
                JsonObject::new()
                    .u64_field("connections", p.connections as u64)
                    .u64_field("hostile", p.hostile as u64)
                    .f64_field("accepted_per_sec", p.accepted_per_sec)
                    .u64_field("delivered", p.delivered)
                    .u64_field("rejected", p.rejected)
                    .u64_field("evictions", p.evictions)
                    .f64_field("detection_p99_ms", p.detection_p99_ms)
                    .f64_field("wall_s", p.wall_s)
                    .finish()
            })),
        )
        .finish();
    println!("BENCH_net_chaos.json: {json}");
}
