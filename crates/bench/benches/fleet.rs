//! E9: fleet throughput campaign — jobs/sec and p99 completion latency
//! versus worker count, plus a fault-injection section showing replacement
//! and recovery under load.
//!
//! The scaling workload is deliberately **sleep-bound**: each job is a
//! duplicated network on the *threaded* runtime with a 2 ms token period,
//! so a run's wall time is dominated by waiting (token pacing + the
//! quiescence window), not CPU. More workers overlap that waiting, so
//! jobs/sec must rise monotonically with the worker count even on a
//! single-core host — the same reason SMT helps latency-bound servers.
//!
//! Run with `cargo bench --bench fleet`; emits a machine-readable
//! `BENCH_fleet.json:` line for trend tracking.

use rtft_bench::report::{banner, AsciiTable};
use rtft_core::{DuplicationConfig, FaultPlan, JitterStageReplica};
use rtft_fleet::{Admission, FleetConfig, FleetExecutor, JobRuntime, JobSpec, JobTemplate};
use rtft_kpn::Payload;
use rtft_obs::json::{array, JsonObject};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const JOBS: usize = 12;
const TOKENS: u64 = 8;

fn sleep_bound_job(name: String, fault: Option<TimeNs>) -> JobSpec {
    let model = DuplicationModel::symmetric(
        PjdModel::from_ms(2.0, 0.2, 0.0),
        PjdModel::from_ms(2.0, 0.2, 8.0),
        [
            PjdModel::from_ms(2.0, 0.3, 0.0),
            PjdModel::from_ms(2.0, 0.5, 0.0),
        ],
    );
    let mut cfg = DuplicationConfig::from_model(model)
        .expect("bounded model")
        .with_token_count(TOKENS)
        .with_payload(Arc::new(Payload::U64));
    if let Some(at) = fault {
        cfg = cfg.with_fault(0, FaultPlan::fail_stop_at(at));
    }
    let factory = Arc::new(JitterStageReplica::from_model(&cfg.model));
    JobSpec {
        name,
        template: JobTemplate::Duplicated { cfg, factory },
        relative_deadline: Duration::from_secs(60),
        runtime: JobRuntime::Threaded {
            deadline: Duration::from_secs(30),
            // The grace window is part of every run's wall time (the
            // infinite shaper stages are reaped by quiescence), so it
            // inflates all scale points equally and cancels out of the
            // jobs/sec ratios. It must exceed the worst-case scheduler
            // stall with `workers × 6` runnable threads on one core —
            // 150 ms has been observed to fire spuriously there.
            quiescence_grace: Duration::from_millis(500),
        },
    }
}

struct ScalePoint {
    workers: usize,
    jobs_per_sec: f64,
    p99_ms: f64,
}

fn throughput(workers: usize) -> ScalePoint {
    let fleet = FleetExecutor::new(FleetConfig {
        workers,
        pending_capacity: JOBS * 2,
        max_replacements: 0,
    });
    let start = Instant::now();
    for i in 0..JOBS {
        let admission = fleet.submit(sleep_bound_job(format!("w{workers}-job{i}"), None));
        assert!(matches!(admission, Admission::Admitted(_)));
    }
    let report = fleet.join();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.status.completed as usize, JOBS, "all jobs complete");
    ScalePoint {
        workers,
        jobs_per_sec: JOBS as f64 / elapsed,
        p99_ms: report.status.completion_ns.p99 as f64 / 1e6,
    }
}

fn fault_section() -> (u64, u64, f64) {
    let fleet = FleetExecutor::new(FleetConfig {
        workers: 2,
        pending_capacity: JOBS * 2,
        max_replacements: 1,
    });
    for i in 0..6 {
        // Every third tenant's replica 0 dies mid-stream.
        let fault = (i % 3 == 0).then(|| TimeNs::from_ms(6));
        let admission = fleet.submit(sleep_bound_job(format!("fault-job{i}"), fault));
        assert!(matches!(admission, Admission::Admitted(_)));
    }
    let report = fleet.join();
    assert!(report.runs.iter().all(|r| !r.failed), "faults masked");
    (
        report.status.replaced,
        report.status.recovered,
        report.status.recovery_ns.mean() / 1e6,
    )
}

fn main() {
    banner("E9: fleet throughput vs worker count");
    println!("{JOBS} sleep-bound duplicated jobs ({TOKENS} tokens @ 2 ms) per point\n");

    let points: Vec<ScalePoint> = WORKER_COUNTS.iter().map(|&w| throughput(w)).collect();

    let mut table = AsciiTable::new();
    table.row(["workers", "jobs/sec", "p99 completion (ms)"]);
    for p in &points {
        table.row([
            p.workers.to_string(),
            format!("{:.2}", p.jobs_per_sec),
            format!("{:.1}", p.p99_ms),
        ]);
    }
    println!("{}", table.render());

    let scaling = points.last().unwrap().jobs_per_sec / points[0].jobs_per_sec;
    println!(
        "scaling {}→{} workers: {scaling:.2}x",
        points[0].workers,
        points.last().unwrap().workers
    );
    for pair in points.windows(2) {
        assert!(
            pair[1].jobs_per_sec >= pair[0].jobs_per_sec * 0.95,
            "jobs/sec regressed {} → {} workers: {:.2} → {:.2}",
            pair[0].workers,
            pair[1].workers,
            pair[0].jobs_per_sec,
            pair[1].jobs_per_sec
        );
    }

    banner("E9b: replacement under load");
    let (replaced, recovered, mean_recovery_ms) = fault_section();
    println!(
        "6 jobs, 2 with injected fail-stop: {replaced} replacement(s), {recovered} recovery(ies), \
         mean time-to-recovery {mean_recovery_ms:.1} ms"
    );

    let json = JsonObject::new()
        .raw_field(
            "points",
            &array(points.iter().map(|p| {
                JsonObject::new()
                    .u64_field("workers", p.workers as u64)
                    .f64_field("jobs_per_sec", p.jobs_per_sec)
                    .f64_field("p99_ms", p.p99_ms)
                    .finish()
            })),
        )
        .f64_field("scaling_1_to_4", scaling)
        .u64_field("replaced", replaced)
        .u64_field("recovered", recovered)
        .f64_field("mean_recovery_ms", mean_recovery_ms)
        .finish();
    println!("BENCH_fleet.json: {json}");
}
