//! Table formatting helpers shared by the regeneration benches.

use rtft_core::equivalence::TimingStats;
use rtft_rtc::TimeNs;
use std::fmt::Write as _;

/// Formats a duration as fractional milliseconds with two decimals.
pub fn ms(t: TimeNs) -> String {
    format!("{:.2}", t.as_ms_f64())
}

/// Formats `(min, max, mean)` timing stats as milliseconds.
pub fn stats_ms(s: &TimingStats) -> String {
    format!(
        "min {} / max {} / mean {}",
        ms(s.min),
        ms(s.max),
        ms(s.mean)
    )
}

/// Formats an optional paper value for side-by-side comparison.
pub fn paper_val(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "n/a".to_owned(),
    }
}

/// A minimal fixed-width ASCII table writer.
#[derive(Debug, Default)]
pub struct AsciiTable {
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with per-column padding.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{}{}  ", cell, " ".repeat(pad));
            }
            out.pop();
            out.pop();
            out.push('\n');
        }
        out
    }
}

/// Prints a banner for a regenerated artefact.
pub fn banner(title: &str) {
    println!("\n===== {title} =====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = AsciiTable::new();
        t.row(["a", "bbbb"]).row(["cccc", "d"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].find("bbbb"), lines[1].find('d'));
    }

    #[test]
    fn ms_formats_fractions() {
        assert_eq!(ms(TimeNs::from_us(6_300)), "6.30");
        assert_eq!(paper_val(None), "n/a");
        assert_eq!(paper_val(Some(48.15)), "48.1");
    }
}
