//! Campaign-level parallelism for the experiment harness.
//!
//! The driver itself lives in [`rtft_kpn::parallel`] so `rtft-chaos` (a
//! dependency of this crate) can use the same implementation; this module
//! is the harness-facing façade. Every campaign in
//! [`crate::campaign`] scatters its independent seeded runs through
//! [`parallel_map_ordered`] and folds the gathered per-run results in
//! scenario-index order, which keeps the emitted JSON byte-identical for
//! any worker count (see `DESIGN.md`, "Parallel campaign execution").
//!
//! Worker count defaults to [`campaign_workers`] — all available cores,
//! overridable with `RTFT_CAMPAIGN_WORKERS` (set `1` to force the inline
//! sequential path).

pub use rtft_kpn::parallel::{campaign_workers, parallel_map_ordered};
