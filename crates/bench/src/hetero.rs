//! E16: the sampled-checker frontier — detection latency vs. compute
//! overhead as a function of the sampling stride `k`.
//!
//! The third redundancy structure trades detection latency for compute:
//! a full-rate main replica plus a `1/k`-rate checker costs `1 + 1/k`
//! execution slots instead of duplication's flat `2.0`, while the
//! sampled-divergence detection bound stretches proportionally to `k`.
//! For each stride the sweep runs a seeded hetero chaos campaign
//! ([`Campaign::generate_hetero`]) and reduces it to one frontier point:
//! the closed-form bounds from `rtft-rtc`, the outcome-class census, and
//! the worst observed detection latency — the empirical check that every
//! latch landed inside the k-dependent bound.

use rtft_apps::networks::App;
use rtft_chaos::{Campaign, CampaignReport, OutcomeClass};
use rtft_core::{HeteroModel, HeteroSizingReport};
use rtft_rtc::detection::HeteroBounds;
use rtft_rtc::TimeNs;

/// The stride values E16 sweeps (log-spaced; `k = 1` degenerates to a
/// full-rate checker, i.e. duplication's detection behaviour at
/// duplication's cost).
pub const HETERO_SWEEP_KS: [u64; 4] = [1, 4, 16, 64];

/// The closed-form bound table for `app` at stride `k`, from the same
/// model construction the chaos runner and the serve layer use (main
/// replica keeps its profile jitter, the checker inherits replica 1's).
///
/// # Panics
///
/// Panics if the app profile's rates diverge (cannot happen for the
/// built-in profiles).
pub fn hetero_bounds_for(app: App, k: u64) -> HeteroBounds {
    let model = app.profile().model;
    let h = HeteroModel::with_checker_jitter(
        model.producer,
        model.consumer,
        model.replica_out[0],
        model.replica_out[1].jitter,
        k,
    );
    let sizing = HeteroSizingReport::analyze(&h).expect("bounded profile");
    sizing.bounds(&h)
}

/// One point of the latency/overhead frontier.
#[derive(Debug, Clone)]
pub struct HeteroPoint {
    /// Sampling stride.
    pub k: u64,
    /// Execution-slot cost relative to an unprotected replica
    /// (`1 + 1/k`; duplication is `2.0`).
    pub compute_factor: f64,
    /// MJPEG sampled-divergence bound (grows with `k`).
    pub sampled_bound: TimeNs,
    /// MJPEG value-mismatch bound (digest re-verification).
    pub value_bound: TimeNs,
    /// MJPEG permanent-timing bound on the main replica.
    pub permanent_bound: TimeNs,
    /// Scenarios in the campaign.
    pub scenarios: usize,
    /// Latches inside the analytic bound.
    pub detected_in_bound: usize,
    /// Latches after the bound (must be zero).
    pub detected_late: usize,
    /// Fault-free or tolerated runs with correct output.
    pub masked: usize,
    /// Unlatched faults with wrong output (must be zero).
    pub silent_failures: usize,
    /// Healthy-replica latches (must be zero).
    pub false_positives: usize,
    /// Worst observed detection latency across the campaign.
    pub max_latency: TimeNs,
    /// The campaign report (canonical JSON is seed-stable per `k`).
    pub report: CampaignReport,
}

/// Runs the stride sweep: one `count`-scenario hetero campaign per `k`.
///
/// # Panics
///
/// Panics if the app profile's rates diverge.
pub fn hetero_frontier(seed: u64, count: u64, ks: &[u64]) -> Vec<HeteroPoint> {
    ks.iter()
        .map(|&k| {
            let report = Campaign::generate_hetero(seed, count, k).run();
            let sizing_factor = 1.0 + 1.0 / k as f64;
            let bounds = hetero_bounds_for(App::Mjpeg, k);
            let max_latency = report
                .outcomes
                .iter()
                .filter_map(|o| o.detection_latency)
                .max()
                .unwrap_or(TimeNs::ZERO);
            HeteroPoint {
                k,
                compute_factor: sizing_factor,
                sampled_bound: bounds.sampled_divergence,
                value_bound: bounds.value,
                permanent_bound: bounds.permanent_timing(),
                scenarios: report.outcomes.len(),
                detected_in_bound: report.count(OutcomeClass::DetectedInBound),
                detected_late: report.count(OutcomeClass::DetectedLate),
                masked: report.count(OutcomeClass::Masked),
                silent_failures: report.count(OutcomeClass::SilentFailure),
                false_positives: report.count(OutcomeClass::FalsePositive),
                max_latency,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_trades_latency_for_compute() {
        let points = hetero_frontier(0xE16, 12, &[1, 8]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.detected_late, 0, "k={}: {:?}", p.k, p.report.to_json());
            assert_eq!(p.silent_failures, 0, "k={}", p.k);
            assert_eq!(p.false_positives, 0, "k={}", p.k);
            assert!(p.compute_factor <= 2.0, "never costlier than duplication");
        }
        // The frontier's defining trade: higher stride, cheaper compute,
        // longer sampled-detection bound.
        assert!(points[1].compute_factor < points[0].compute_factor);
        assert!(points[1].sampled_bound > points[0].sampled_bound);
    }

    #[test]
    fn bounds_table_is_monotone_in_k() {
        let mut last = TimeNs::ZERO;
        for k in HETERO_SWEEP_KS {
            let b = hetero_bounds_for(App::Mjpeg, k);
            assert!(b.sampled_divergence > last, "sampled bound grows with k");
            last = b.sampled_divergence;
        }
    }
}
