//! Table regeneration: the printable artefacts themselves.
//!
//! Each `print_*` function runs the relevant campaigns and prints the
//! regenerated table with paper-reported values side by side where the
//! paper provides them.

use crate::campaign::{
    comparison_campaign, fault_campaign_observed, no_fault_campaign, FaultCampaign, NoFaultStats,
    RUNS,
};
use crate::paper::{PaperTable2, ADPCM_TABLE2, MJPEG_TABLE2, TABLE3};
use crate::report::{banner, ms, paper_val, stats_ms, AsciiTable};
use crate::{measure_runtime_overhead, memory_overhead};
use rtft_apps::networks::App;
use rtft_apps::profiles;
use rtft_rtc::sizing::SizingReport;
use rtft_rtc::TimeNs;

/// Regenerates Table 1: the experiment parameters of all three
/// applications.
pub fn print_table1() {
    banner("Table 1: Parameters for Fault Tolerance Experiments (reconstructed)");
    let mut t = AsciiTable::new();
    t.row([
        "Application",
        "Producer <P,J,D>",
        "Replica 1 <P,J,D>",
        "Replica 2 <P,J,D>",
        "Consumer <P,J,D>",
        "Token in",
        "Token out",
    ]);
    for p in profiles::all() {
        t.row([
            p.name.to_owned(),
            p.model.producer.to_string(),
            p.model.replica_out[0].to_string(),
            p.model.replica_out[1].to_string(),
            p.model.consumer.to_string(),
            format!("{} B", p.input_token_bytes),
            format!("{} B", p.output_token_bytes),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nNote: tuples are <period, jitter, delay>; Table 1 in the source scan is partially\n\
         garbled, so these are the self-consistent reconstructions of DESIGN.md §1 (they\n\
         reproduce the paper's Table 2 capacities exactly — verified by the table2 benches)."
    );
}

/// The experiment scale for one Table 2 regeneration.
#[derive(Debug, Clone, Copy)]
pub struct Table2Scale {
    /// Tokens per run (the paper's 18 000/20 000 scaled down).
    pub tokens: u64,
    /// Fault injection instant.
    pub fault_at: TimeNs,
}

/// Default scales per application, sized so the full table regenerates in
/// seconds while exercising hundreds of steady-state tokens.
pub fn default_scale(app: App) -> Table2Scale {
    let period = app.profile().model.producer.period;
    Table2Scale {
        tokens: 300,
        fault_at: period * 100,
    }
}

/// Regenerates one application block of Table 2.
pub fn print_table2(app: App, paper: Option<&PaperTable2>) {
    let profile = app.profile();
    let sizing = SizingReport::analyze(&profile.model).expect("bounded profile");
    let scale = default_scale(app);
    banner(&format!(
        "Table 2: {} ({} runs, {} tokens/run, fault at {})",
        profile.name,
        RUNS,
        scale.tokens,
        ms(scale.fault_at)
    ));

    let nf = no_fault_campaign(app, RUNS, scale.tokens);
    let (fc, metrics) = fault_campaign_observed(app, RUNS, scale.tokens, scale.fault_at);
    print_table2_from(app, paper, &sizing, &nf, &fc);
    println!("\nEmbedded bench metrics (machine-readable result JSON):");
    println!("{}", metrics.to_json());
}

/// Prints a Table 2 block from already-computed campaign results.
pub fn print_table2_from(
    app: App,
    paper: Option<&PaperTable2>,
    sizing: &SizingReport,
    nf: &NoFaultStats,
    fc: &FaultCampaign,
) {
    let mut t = AsciiTable::new();
    t.row(["FIFO", "|R1|", "|R2|", "|S1|", "|S2|", "|S1|0", "|S2|0"]);
    t.row([
        "Theoretical capacity".to_owned(),
        sizing.replicator_capacity[0].to_string(),
        sizing.replicator_capacity[1].to_string(),
        sizing.selector_capacity[0].to_string(),
        sizing.selector_capacity[1].to_string(),
        sizing.selector_initial_fill[0].to_string(),
        sizing.selector_initial_fill[1].to_string(),
    ]);
    if let Some(p) = paper {
        t.row([
            "  (paper)".to_owned(),
            p.replicator_capacity[0].to_string(),
            p.replicator_capacity[1].to_string(),
            p.selector_capacity[0].to_string(),
            p.selector_capacity[1].to_string(),
            p.selector_initial_fill[0].to_string(),
            p.selector_initial_fill[1].to_string(),
        ]);
    }
    t.row([
        format!("Max observed fill ({RUNS} fault-free runs)"),
        nf.max_fill_replicator[0].to_string(),
        nf.max_fill_replicator[1].to_string(),
        format!("{} (single physical queue)", nf.max_fill_selector),
        String::new(),
        "-".to_owned(),
        "-".to_owned(),
    ]);
    print!("{}", t.render());
    println!(
        "Fault-free: false positives = {}, output equivalent to reference = {}",
        nf.false_positive, nf.equivalent
    );

    println!("\nFault detection latency (fail-stop, alternating replica):");
    let mut t = AsciiTable::new();
    t.row([
        "Site",
        "Observed (measured)",
        "Upper bound",
        "Detected",
        "Paper (max/mean | bound)",
    ]);
    let paper_sel = paper.map(|p| {
        format!(
            "{}/{} | {:.0}",
            paper_val(p.selector_latency_ms.1),
            paper_val(p.selector_latency_ms.2),
            p.selector_bound_ms
        )
    });
    let paper_rep = paper.map(|p| {
        format!(
            "{}/{} | {:.0}",
            paper_val(p.replicator_latency_ms.1),
            paper_val(p.replicator_latency_ms.2),
            p.replicator_bound_ms
        )
    });
    t.row([
        "Selector".to_owned(),
        stats_ms(&fc.selector.stats),
        format!("{} ms", ms(fc.selector.bound)),
        format!("{}/{}", fc.selector.detections, fc.selector.runs),
        paper_sel.unwrap_or_else(|| "-".to_owned()),
    ]);
    t.row([
        "Replicator".to_owned(),
        stats_ms(&fc.replicator.stats),
        format!("{} ms", ms(fc.replicator.bound)),
        format!("{}/{}", fc.replicator.detections, fc.replicator.runs),
        paper_rep.unwrap_or_else(|| "-".to_owned()),
    ]);
    print!("{}", t.render());
    println!(
        "All faults masked (full delivery, healthy replica unflagged): {}",
        fc.all_masked
    );

    let mem = memory_overhead(app);
    let rt = measure_runtime_overhead(200_000);
    let period_ns = app.profile().model.producer.period.as_ns() as f64;
    println!("\nOverhead:");
    println!(
        "  Memory : selector {} B + {} tokens; replicator {} B + {} tokens (paper: 2.1 KB / 1.5 KB)",
        mem.selector_bytes, mem.selector_tokens, mem.replicator_bytes, mem.replicator_tokens
    );
    println!(
        "  Runtime: selector {:.0} ns/op ({:.4}% of period); replicator {:.0} ns/op ({:.4}% of period) (paper: 5 µs / 2.1 µs on a 533 MHz core)",
        rt.selector_ns,
        100.0 * rt.selector_ns / period_ns,
        rt.replicator_ns,
        100.0 * rt.replicator_ns / period_ns,
    );

    println!("\nConsumer inter-arrival timings:");
    let mut t = AsciiTable::new();
    t.row(["Network", "Measured (ms)", "Paper (min/max/mean ms)"]);
    let fmt_paper = |v: (f64, f64, f64)| format!("{:.2}/{:.2}/{:.2}", v.0, v.1, v.2);
    t.row([
        "Reference".to_owned(),
        stats_ms(&nf.reference_inter),
        paper
            .map(|p| fmt_paper(p.reference_inter_ms))
            .unwrap_or_else(|| "-".to_owned()),
    ]);
    t.row([
        "Duplicated".to_owned(),
        stats_ms(&nf.duplicated_inter),
        paper
            .map(|p| fmt_paper(p.duplicated_inter_ms))
            .unwrap_or_else(|| "-".to_owned()),
    ]);
    print!("{}", t.render());
}

/// Returns the paper block for an app, if the paper printed one.
pub fn paper_table2(app: App) -> Option<&'static PaperTable2> {
    match app {
        App::Mjpeg => Some(&MJPEG_TABLE2),
        App::Adpcm => Some(&ADPCM_TABLE2),
        App::H264 => None, // paper omitted the block for space
    }
}

/// Regenerates Table 3: our approach vs the distance-function monitor.
pub fn print_table3() {
    banner("Table 3: Comparison with the distance-function approach (fail-stop, minimized jitter)");
    let mut t = AsciiTable::new();
    t.row([
        "Application",
        "DistFn measured (ms)",
        "Ours measured (ms)",
        "Paper DistFn max/min/mean",
        "Paper Ours max/min/mean",
    ]);
    for (app, row) in [
        (App::Mjpeg, TABLE3[0]),
        (App::Adpcm, TABLE3[1]),
        (App::H264, TABLE3[2]),
    ] {
        match comparison_campaign(app, RUNS) {
            Some(c) => {
                t.row([
                    row.app.to_owned(),
                    stats_ms(&c.distance_fn),
                    stats_ms(&c.ours),
                    format!(
                        "{:.1}/{:.1}/{:.1}",
                        row.distance_fn_ms.0, row.distance_fn_ms.1, row.distance_fn_ms.2
                    ),
                    format!(
                        "{:.1}/{:.1}/{:.1}",
                        row.ours_ms.0, row.ours_ms.1, row.ours_ms.2
                    ),
                ]);
            }
            None => {
                t.row([
                    row.app.to_owned(),
                    "MISSED".into(),
                    "MISSED".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    print!("{}", t.render());
    println!(
        "\nShape check: the distance-function monitor trails our counters-based detection by\n\
         roughly its polling quantisation (paper: ~1 ms at 1 ms polling), at the cost of\n\
         per-stream timestamp history and four timers the framework does not need."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prints() {
        print_table1();
    }

    #[test]
    fn scales_are_positive() {
        for app in [App::Mjpeg, App::Adpcm, App::H264] {
            let s = default_scale(app);
            assert!(s.tokens >= 100);
            assert!(s.fault_at > TimeNs::ZERO);
        }
    }

    #[test]
    fn paper_blocks_match_apps() {
        assert!(paper_table2(App::Mjpeg).is_some());
        assert!(paper_table2(App::Adpcm).is_some());
        assert!(paper_table2(App::H264).is_none());
    }
}
