//! Experiment campaigns: the simulation runs behind every regenerated
//! table.
//!
//! All campaigns run on the deterministic discrete-event engine with
//! seeded jitter, so every table regenerates bit-identically. The paper's
//! fault-injection points (after 18 000 frames / 20 000 samples) are
//! scaled down to keep a full `cargo bench` in minutes; the scaling is
//! harmless because detection state depends only on steady-state queue
//! occupancy, which is reached within a few tokens (documented in
//! `EXPERIMENTS.md`).

use crate::parallel::{campaign_workers, parallel_map_ordered};
use rtft_apps::networks::App;
use rtft_core::equivalence::TimingStats;
use rtft_core::{
    build_duplicated, build_reference, instrument_duplicated, DuplicationConfig, FaultPlan,
    ReplicaFactory, ReplicatorFaultCause, SelectorFaultCause,
};
use rtft_distfn::{tap_stage, DistanceMonitor, LRepetitive, StreamTap};
use rtft_kpn::{Engine, Fifo, Network, NodeId, PortId};
use rtft_obs::{BenchMetrics, DetectionSite, MetricsRegistry, ReplicaStatus};
use rtft_rtc::sizing::SizingReport;
use rtft_rtc::{PjdModel, TimeNs};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Number of experiment repetitions, matching the paper's "20 such runs".
pub const RUNS: usize = 20;

/// Aggregate results of the fault-free campaign (Table 2's "Max. Observed
/// fill" and "Inter-Frame Timings" blocks).
#[derive(Debug, Clone)]
pub struct NoFaultStats {
    /// Max observed replicator queue fills across all runs.
    pub max_fill_replicator: [usize; 2],
    /// Max observed selector physical-queue fill.
    pub max_fill_selector: usize,
    /// Consumer inter-arrival stats, duplicated network (pooled over runs).
    pub duplicated_inter: TimingStats,
    /// Consumer inter-arrival stats, reference network.
    pub reference_inter: TimingStats,
    /// Any spurious fault detection (must be false — eq. (5) guarantee).
    pub false_positive: bool,
    /// All runs delivered every token with identical value sequences.
    pub equivalent: bool,
}

/// Per-run output of the fault-free campaign, gathered in run order and
/// folded sequentially so the aggregate is worker-count independent.
struct NoFaultRun {
    max_fill_replicator: [usize; 2],
    max_fill_selector: usize,
    false_positive: bool,
    equivalent: bool,
    dup_gaps: Vec<TimeNs>,
    ref_gaps: Vec<TimeNs>,
}

/// Runs the fault-free campaign for `app`: `runs` paired
/// reference/duplicated executions over `tokens` tokens each.
///
/// Runs are independent seeded simulations, so they execute in parallel
/// ([`campaign_workers`] threads; `RTFT_CAMPAIGN_WORKERS=1` forces the
/// sequential path) and are reduced in run order — the aggregate is
/// identical at any worker count.
///
/// # Panics
///
/// Panics if the app profile's rates diverge (cannot happen for the
/// built-in profiles).
pub fn no_fault_campaign(app: App, runs: usize, tokens: u64) -> NoFaultStats {
    no_fault_campaign_with_workers(app, runs, tokens, campaign_workers())
}

/// [`no_fault_campaign`] with an explicit worker count.
///
/// # Panics
///
/// Panics if the app profile's rates diverge.
pub fn no_fault_campaign_with_workers(
    app: App,
    runs: usize,
    tokens: u64,
    workers: usize,
) -> NoFaultStats {
    let results = parallel_map_ordered((0..runs as u64).collect::<Vec<_>>(), workers, |_, run| {
        let cfg = app
            .duplication_config(run + 1, tokens)
            .expect("bounded profile")
            .with_seeds(run * 3 + 1, run * 3 + 2);
        let factory = app.replica_factory([run * 7 + 11, run * 7 + 22]);
        let horizon = sim_horizon(&cfg, tokens);

        let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
        let mut dup = Engine::new(dup_net);
        dup.run_until(horizon);
        let (ref_net, ref_ids) = build_reference(&cfg, &factory);
        let mut reference = Engine::new(ref_net);
        reference.run_until(horizon);

        let dnet = dup.network();
        let mut max_fill_replicator = [0usize; 2];
        for (i, fill) in max_fill_replicator.iter_mut().enumerate() {
            *fill = dnet.channel(dup_ids.replicator).max_fill(i);
        }
        let rep = dup_ids.replicator_faults(dnet);
        let sel = dup_ids.selector_faults(dnet);

        let d = dup_ids.consumer_arrivals(dnet);
        let r = ref_ids.consumer_arrivals(reference.network());
        NoFaultRun {
            max_fill_replicator,
            max_fill_selector: dnet.channel(dup_ids.selector).max_fill(0),
            false_positive: rep.iter().any(Option::is_some) || sel.iter().any(Option::is_some),
            equivalent: d.len() == r.len() && d.iter().map(|a| a.1).eq(r.iter().map(|a| a.1)),
            dup_gaps: d.windows(2).map(|w| w[1].0 - w[0].0).collect(),
            ref_gaps: r.windows(2).map(|w| w[1].0 - w[0].0).collect(),
        }
    });

    let mut max_fill_replicator = [0usize; 2];
    let mut max_fill_selector = 0usize;
    let mut dup_gaps: Vec<TimeNs> = Vec::new();
    let mut ref_gaps: Vec<TimeNs> = Vec::new();
    let mut false_positive = false;
    let mut equivalent = true;
    for run in results {
        for (i, fill) in max_fill_replicator.iter_mut().enumerate() {
            *fill = (*fill).max(run.max_fill_replicator[i]);
        }
        max_fill_selector = max_fill_selector.max(run.max_fill_selector);
        false_positive |= run.false_positive;
        equivalent &= run.equivalent;
        dup_gaps.extend(run.dup_gaps);
        ref_gaps.extend(run.ref_gaps);
    }

    NoFaultStats {
        max_fill_replicator,
        max_fill_selector,
        duplicated_inter: TimingStats::from_durations(&dup_gaps).expect("gaps recorded"),
        reference_inter: TimingStats::from_durations(&ref_gaps).expect("gaps recorded"),
        false_positive,
        equivalent,
    }
}

/// Aggregate detection latencies of one site across a fault campaign.
#[derive(Debug, Clone, Copy)]
pub struct DetectionStats {
    /// Observed latencies (fault instant → detection instant).
    pub stats: TimingStats,
    /// The analytic worst-case bound for this site.
    pub bound: TimeNs,
    /// Runs in which this site detected the fault.
    pub detections: usize,
    /// Total runs.
    pub runs: usize,
}

/// Results of the fault-injection campaign (Table 2's "Fault Detection
/// Latency" block).
#[derive(Debug, Clone, Copy)]
pub struct FaultCampaign {
    /// Replicator-side detection.
    pub replicator: DetectionStats,
    /// Selector-side detection.
    pub selector: DetectionStats,
    /// All runs delivered every token despite the fault.
    pub all_masked: bool,
}

/// Runs the fail-stop fault campaign for `app`: `runs` executions,
/// alternating the faulty replica, fault injected at `fault_at`.
///
/// # Panics
///
/// Panics if the app profile's rates diverge.
pub fn fault_campaign(app: App, runs: usize, tokens: u64, fault_at: TimeNs) -> FaultCampaign {
    fault_campaign_observed(app, runs, tokens, fault_at).0
}

/// [`fault_campaign`] with the observability subsystem attached: every run
/// executes with engine metrics on and a [`rtft_obs::HealthModel`] wired
/// through [`instrument_duplicated`], and the pooled results come back as a
/// [`BenchMetrics`] bundle for the result JSON. The detection numbers are
/// identical to the untracked campaign — instrumentation never touches
/// virtual time.
///
/// # Panics
///
/// Panics if the app profile's rates diverge.
pub fn fault_campaign_observed(
    app: App,
    runs: usize,
    tokens: u64,
    fault_at: TimeNs,
) -> (FaultCampaign, BenchMetrics) {
    fault_campaign_observed_with_workers(app, runs, tokens, fault_at, campaign_workers())
}

/// Per-run output of the fault campaign. Each run records into its own
/// [`MetricsRegistry`]; the aggregate registry absorbs them in run order,
/// which yields the same histogram state as sequential recording (bucket
/// counts, sum and max all add/combine exactly — see `rtft_obs`).
struct FaultRun {
    registry: MetricsRegistry,
    rep_lat: Option<(TimeNs, &'static str)>,
    sel_lat: Option<(TimeNs, &'static str)>,
    max_fills: [u64; 3],
    masked: bool,
    sizing: SizingReport,
}

/// [`fault_campaign_observed`] with an explicit worker count.
///
/// # Panics
///
/// Panics if the app profile's rates diverge.
pub fn fault_campaign_observed_with_workers(
    app: App,
    runs: usize,
    tokens: u64,
    fault_at: TimeNs,
    workers: usize,
) -> (FaultCampaign, BenchMetrics) {
    let results = parallel_map_ordered((0..runs as u64).collect::<Vec<_>>(), workers, |_, run| {
        let registry = MetricsRegistry::new();
        let latency = registry.histogram("bench.detection_latency_ns");
        let faulty = (run % 2) as usize;
        let cfg = app
            .duplication_config(run + 1, tokens)
            .expect("bounded profile")
            .with_seeds(run * 3 + 1, run * 3 + 2)
            .with_fault(faulty, FaultPlan::fail_stop_at(fault_at));
        let sizing = cfg.sizing;
        let factory = app.replica_factory([run * 7 + 11, run * 7 + 22]);
        let horizon = sim_horizon(&cfg, tokens);

        let (mut net, ids) = build_duplicated(&cfg, &factory);
        let health = instrument_duplicated(&mut net, &ids, &cfg, &registry);
        let mut engine = Engine::new(net).with_metrics(&registry);
        engine.run_until(horizon);
        let net = engine.network();

        let rep_lat = ids.replicator_faults(net)[faulty].map(|f| {
            let lat = f.at.saturating_sub(fault_at);
            latency.record(lat.as_ns());
            let site = match f.cause {
                ReplicatorFaultCause::Overflow => DetectionSite::ReplicatorOverflow,
                ReplicatorFaultCause::Divergence => DetectionSite::ReplicatorDivergence,
            };
            (lat, site.label())
        });
        let sel_lat = ids.selector_faults(net)[faulty].map(|f| {
            let lat = f.at.saturating_sub(fault_at);
            latency.record(lat.as_ns());
            let site = match f.cause {
                SelectorFaultCause::Stall => DetectionSite::SelectorStall,
                SelectorFaultCause::Divergence => DetectionSite::SelectorDivergence,
            };
            (lat, site.label())
        });
        let mut max_fills = [0u64; 3]; // replicator.q0, replicator.q1, selector
        for (i, fill) in max_fills.iter_mut().take(2).enumerate() {
            *fill = net.channel(ids.replicator).max_fill(i) as u64;
        }
        max_fills[2] = net.channel(ids.selector).max_fill(0) as u64;

        let masked = ids.consumer_arrivals(net).len() as u64 == tokens
                // The healthy replica must never be flagged.
                && ids.replicator_faults(net)[1 - faulty].is_none()
                && ids.selector_faults(net)[1 - faulty].is_none()
                // The health model's folded view must agree with the raw
                // latches.
                && health.status(faulty) == ReplicaStatus::Faulty
                && health.status(1 - faulty) == ReplicaStatus::Healthy;

        FaultRun {
            registry,
            rep_lat,
            sel_lat,
            max_fills,
            masked,
            sizing,
        }
    });

    let registry = MetricsRegistry::new();
    let latency = registry.histogram("bench.detection_latency_ns");
    let mut by_site: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut max_fills = [0u64; 3];
    let mut rep_lat = Vec::new();
    let mut sel_lat = Vec::new();
    let mut all_masked = true;
    let mut sizing: Option<SizingReport> = None;
    for run in &results {
        registry.absorb(&run.registry);
        if let Some((lat, site)) = run.rep_lat {
            rep_lat.push(lat);
            *by_site.entry(site).or_insert(0) += 1;
        }
        if let Some((lat, site)) = run.sel_lat {
            sel_lat.push(lat);
            *by_site.entry(site).or_insert(0) += 1;
        }
        for (i, fill) in max_fills.iter_mut().enumerate() {
            *fill = (*fill).max(run.max_fills[i]);
        }
        all_masked &= run.masked;
        sizing.get_or_insert(run.sizing);
    }

    let metrics = BenchMetrics {
        detection_latency: latency.snapshot(),
        detections_by_site: by_site
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        max_fills: vec![
            ("replicator.q0".to_owned(), max_fills[0]),
            ("replicator.q1".to_owned(), max_fills[1]),
            ("selector".to_owned(), max_fills[2]),
        ],
        runs: runs as u64,
    };
    let sizing = sizing.expect("at least one run");
    let campaign = FaultCampaign {
        replicator: DetectionStats {
            stats: TimingStats::from_durations(&rep_lat).unwrap_or(TimingStats {
                min: TimeNs::ZERO,
                max: TimeNs::ZERO,
                mean: TimeNs::ZERO,
                samples: 0,
            }),
            bound: sizing.replicator_detection_bound,
            detections: rep_lat.len(),
            runs,
        },
        selector: DetectionStats {
            stats: TimingStats::from_durations(&sel_lat).unwrap_or(TimingStats {
                min: TimeNs::ZERO,
                max: TimeNs::ZERO,
                mean: TimeNs::ZERO,
                samples: 0,
            }),
            bound: sizing.selector_detection_bound,
            detections: sel_lat.len(),
            runs,
        },
        all_masked,
    };
    (campaign, metrics)
}

/// Table 3 campaign result: our approach vs the distance-function monitor
/// on the same fault, timing variations minimised (paper §4.3).
#[derive(Debug, Clone, Copy)]
pub struct ComparisonStats {
    /// Our approach (replicator overflow detection).
    pub ours: TimingStats,
    /// Distance-function monitor (1 ms polling, l = 1).
    pub distance_fn: TimingStats,
}

/// A [`ReplicaFactory`] decorator inserting a distance-function tap on the
/// replica's input stream (the consumption events the paper's Table 3
/// monitors at the replicator).
struct TappedFactory<'a> {
    inner: &'a dyn ReplicaFactory,
    taps: [Arc<StreamTap>; 2],
}

impl ReplicaFactory for TappedFactory<'_> {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        let mid = net.add_channel(Fifo::new(format!("r{replica}.tap"), 1));
        let tap = net.add_process(tap_stage(
            format!("r{replica}.tapstage"),
            input,
            PortId::of(mid),
            Arc::clone(&self.taps[replica]),
        ));
        let mut nodes = vec![tap];
        nodes.extend(
            self.inner
                .build(net, PortId::of(mid), output, replica, fault),
        );
        nodes
    }
}

/// Runs the Table 3 comparison for `app`: replica timing variations
/// minimised (0.2 ms jitter), fail-stop fault in replica 0, `runs`
/// repetitions. Returns `None` if either detector missed in some run
/// (should not happen; surfaced rather than panicking so the table can
/// report it).
pub fn comparison_campaign(app: App, runs: usize) -> Option<ComparisonStats> {
    comparison_campaign_with_workers(app, runs, campaign_workers())
}

/// [`comparison_campaign`] with an explicit worker count.
pub fn comparison_campaign_with_workers(
    app: App,
    runs: usize,
    workers: usize,
) -> Option<ComparisonStats> {
    let profile = app.profile();
    let period = profile.model.producer.period;
    let tiny = TimeNs::from_us(200);
    // Minimised-variation model (paper: "timing variations from the
    // replicas were minimized, enabling ... l = 1").
    let model = rtft_rtc::sizing::DuplicationModel::symmetric(
        profile.model.producer,
        profile.model.consumer,
        [
            PjdModel::new(period, tiny, TimeNs::ZERO),
            PjdModel::new(period, tiny, TimeNs::ZERO),
        ],
    );
    let tokens = 120u64;
    let fault_at = period * 40;
    let horizon = period * (tokens + 40) + TimeNs::from_secs(1);

    let results = parallel_map_ordered(
        (0..runs as u64).collect::<Vec<_>>(),
        workers,
        |_, run| -> Option<(TimeNs, TimeNs)> {
            let make_cfg = || {
                DuplicationConfig::from_model(model)
                    .expect("bounded")
                    .with_token_count(tokens)
                    .with_seeds(run * 3 + 1, run * 3 + 2)
                    .with_payload(app.payload_generator(run + 1))
                    .with_fault(0, FaultPlan::fail_stop_at(fault_at))
            };
            let factory = app
                .replica_factory([run * 7 + 11, run * 7 + 22])
                .with_jitter([tiny, tiny]);

            // Run 1 — our approach, unmodified network: replicator overflow
            // detection with no observation machinery in the data path.
            let (net, ids) = build_duplicated(&make_cfg(), &factory);
            let mut engine = Engine::new(net);
            engine.run_until(horizon + TimeNs::from_secs(2));
            let our_record = ids.replicator_faults(engine.network())[0]?;
            let ours = our_record.at.saturating_sub(fault_at);

            // Run 2 — the baseline: identical seeds, plus the tap stage the
            // distance-function monitor needs to timestamp consumption
            // events (the observation cost our counters avoid).
            let taps = [StreamTap::new(), StreamTap::new()];
            let tapped = TappedFactory {
                inner: &factory,
                taps: [Arc::clone(&taps[0]), Arc::clone(&taps[1])],
            };
            let (mut net, _ids) = build_duplicated(&make_cfg(), &tapped);
            // l = 1, 1 ms polling, fail-silent (overdue) rule — §4.3's setup.
            let bounds = LRepetitive::from_pjd(
                &PjdModel::new(period, tiny + profile.model.producer.jitter, TimeNs::ZERO),
                1,
            );
            let monitor = net.add_process(DistanceMonitor::new(
                "distfn",
                Arc::clone(&taps[0]),
                bounds,
                TimeNs::from_ms(1),
                Some(horizon),
            ));
            let mut engine = Engine::new(net);
            engine.run_until(horizon + TimeNs::from_secs(2));
            let verdict = engine
                .network()
                .process_as::<DistanceMonitor>(monitor)?
                .verdict()?;
            Some((ours, verdict.detected_at.saturating_sub(fault_at)))
        },
    );

    let mut ours = Vec::with_capacity(runs);
    let mut theirs = Vec::with_capacity(runs);
    for pair in results {
        // A missed detection in any run is surfaced rather than panicking.
        let (o, t) = pair?;
        ours.push(o);
        theirs.push(t);
    }

    Some(ComparisonStats {
        ours: TimingStats::from_durations(&ours)?,
        distance_fn: TimingStats::from_durations(&theirs)?,
    })
}

/// Simulation horizon comfortably covering `tokens` tokens plus startup
/// and detection transients.
fn sim_horizon(cfg: &DuplicationConfig, tokens: u64) -> TimeNs {
    cfg.model.producer.period * (tokens + 20)
        + cfg.model.consumer.delay
        + cfg.sizing.selector_detection_bound * 4
        + TimeNs::from_secs(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_campaign_is_clean_adpcm() {
        let stats = no_fault_campaign(App::Adpcm, 3, 60);
        assert!(!stats.false_positive);
        assert!(stats.equivalent);
        for i in 0..2 {
            assert!(stats.max_fill_replicator[i] >= 1, "queues actually used");
        }
        // Mean inter-arrival tracks the 6.3 ms sample period.
        let mean_ms = stats.duplicated_inter.mean.as_ms_f64();
        assert!((5.5..7.1).contains(&mean_ms), "mean {mean_ms}");
    }

    #[test]
    fn fault_campaign_detects_and_masks_adpcm() {
        let c = fault_campaign(App::Adpcm, 4, 80, TimeNs::from_ms(189));
        assert!(c.all_masked);
        assert_eq!(c.replicator.detections, 4);
        assert_eq!(c.selector.detections, 4);
        assert!(c.replicator.stats.max <= c.replicator.bound, "within bound");
        assert!(c.selector.stats.max <= c.selector.bound, "within bound");
    }

    #[test]
    fn observed_campaign_pools_bench_metrics() {
        let (c, m) = fault_campaign_observed(App::Adpcm, 4, 80, TimeNs::from_ms(189));
        assert!(c.all_masked, "health model must agree with raw latches");
        assert_eq!(m.runs, 4);
        // One latency sample per detection, both sites pooled.
        assert_eq!(
            m.detection_latency.count as usize,
            c.replicator.detections + c.selector.detections
        );
        assert!(
            m.detection_latency.max <= c.selector.bound.as_ns().max(c.replicator.bound.as_ns())
        );
        let sites: Vec<&str> = m
            .detections_by_site
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        assert!(sites
            .iter()
            .all(|s| s.starts_with("replicator.") || s.starts_with("selector.")));
        assert_eq!(m.detections_by_site.iter().map(|(_, n)| n).sum::<u64>(), 8);
        assert_eq!(m.max_fills.len(), 3);
        assert!(
            m.max_fills.iter().all(|(_, f)| *f >= 1),
            "queues actually used"
        );
        let json = m.to_json();
        assert!(json.contains("\"detection_latency_ns\""));
        assert!(json.contains("\"max_observed_fills\""));
    }

    #[test]
    fn comparison_campaign_ours_beats_distfn_adpcm() {
        let c = comparison_campaign(App::Adpcm, 3).expect("both detect");
        // The distance-function monitor pays the polling quantisation.
        assert!(
            c.distance_fn.mean >= c.ours.mean,
            "distfn {} vs ours {}",
            c.distance_fn.mean,
            c.ours.mean
        );
    }
}
