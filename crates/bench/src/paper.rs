//! The paper's reported numbers (Tables 2 and 3), kept verbatim so every
//! regenerated table can print measured-vs-paper side by side.
//!
//! Source: Rai et al., DAC 2014, §4. Entries the scanned copy garbles
//! beyond recovery are marked with `None`.

/// Paper Table 2, one application block.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable2 {
    /// Application name.
    pub app: &'static str,
    /// Theoretical capacities |R₁|, |R₂|.
    pub replicator_capacity: [u64; 2],
    /// Theoretical capacities |S₁|, |S₂|.
    pub selector_capacity: [u64; 2],
    /// Initial fills |S₁|₀, |S₂|₀.
    pub selector_initial_fill: [u64; 2],
    /// Max observed replicator fill over 20 fault-free runs.
    pub observed_fill_replicator: [u64; 2],
    /// Detection latency at the selector, ms (min, max, mean) — entries
    /// the scan garbles are `None`.
    pub selector_latency_ms: (Option<f64>, Option<f64>, Option<f64>),
    /// Computed upper bound at the selector, ms.
    pub selector_bound_ms: f64,
    /// Detection latency at the replicator, ms (min, max, mean).
    pub replicator_latency_ms: (Option<f64>, Option<f64>, Option<f64>),
    /// Computed upper bound at the replicator, ms.
    pub replicator_bound_ms: f64,
    /// Selector memory overhead: bytes of state (tokens excluded).
    pub selector_state_bytes: u64,
    /// Replicator memory overhead: bytes of state.
    pub replicator_state_bytes: u64,
    /// Runtime overhead per op at the selector, µs.
    pub selector_runtime_us: f64,
    /// Runtime overhead per op at the replicator, µs.
    pub replicator_runtime_us: f64,
    /// Reference inter-frame timings, ms (min, max, mean).
    pub reference_inter_ms: (f64, f64, f64),
    /// Duplicated inter-frame timings, ms (min, max, mean).
    pub duplicated_inter_ms: (f64, f64, f64),
}

/// Paper Table 2, MJPEG block.
pub const MJPEG_TABLE2: PaperTable2 = PaperTable2 {
    app: "MJPEG",
    replicator_capacity: [2, 3],
    selector_capacity: [4, 6],
    selector_initial_fill: [2, 3],
    observed_fill_replicator: [1, 3],
    selector_latency_ms: (None, Some(103.0), Some(100.0)),
    selector_bound_ms: 180.0,
    replicator_latency_ms: (None, Some(102.0), Some(100.0)),
    replicator_bound_ms: 180.0,
    selector_state_bytes: 2_100,
    replicator_state_bytes: 1_500,
    selector_runtime_us: 5.0,
    replicator_runtime_us: 2.1,
    reference_inter_ms: (29.0, 43.0, 30.0),
    duplicated_inter_ms: (29.0, 43.0, 30.0),
};

/// Paper Table 2, ADPCM block.
pub const ADPCM_TABLE2: PaperTable2 = PaperTable2 {
    app: "ADPCM",
    replicator_capacity: [2, 4],
    selector_capacity: [4, 8],
    selector_initial_fill: [2, 4],
    observed_fill_replicator: [1, 3],
    selector_latency_ms: (Some(21.0), Some(39.0), Some(33.0)),
    selector_bound_ms: 59.0,
    replicator_latency_ms: (None, Some(40.0), Some(34.0)),
    replicator_bound_ms: 69.7,
    selector_state_bytes: 2_100,
    replicator_state_bytes: 1_500,
    selector_runtime_us: 5.0,
    replicator_runtime_us: 2.1,
    reference_inter_ms: (4.70, 8.25, 6.18),
    duplicated_inter_ms: (4.71, 8.25, 6.18),
};

/// Paper Table 3, one row: fault-detection latency (ms) for the distance-
/// function approach vs the paper's approach, (max, min, mean).
#[derive(Debug, Clone, Copy)]
pub struct PaperTable3 {
    /// Application name.
    pub app: &'static str,
    /// Distance-function approach latency, ms (max, min, mean).
    pub distance_fn_ms: (f64, f64, f64),
    /// Paper's approach latency, ms (max, min, mean).
    pub ours_ms: (f64, f64, f64),
}

/// Paper Table 3, all rows.
pub const TABLE3: [PaperTable3; 3] = [
    PaperTable3 {
        app: "MJPEG",
        distance_fn_ms: (48.2, 48.1, 48.1),
        ours_ms: (47.1, 47.0, 47.0),
    },
    PaperTable3 {
        app: "ADPCM",
        distance_fn_ms: (7.3, 7.1, 7.2),
        ours_ms: (6.3, 6.3, 6.3),
    },
    PaperTable3 {
        app: "H.264",
        distance_fn_ms: (31.4, 31.2, 31.3),
        ours_ms: (30.4, 30.1, 30.3),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_are_internally_consistent() {
        for t in [MJPEG_TABLE2, ADPCM_TABLE2] {
            assert!(t.selector_capacity[0] <= t.selector_capacity[1]);
            assert!(t.selector_initial_fill[0] <= t.selector_capacity[0]);
            assert!(t.selector_initial_fill[1] <= t.selector_capacity[1]);
            if let (_, Some(max), Some(mean)) = t.selector_latency_ms {
                assert!(mean <= max);
                assert!(
                    max <= t.selector_bound_ms,
                    "{}: observed within bound",
                    t.app
                );
            }
        }
        for row in TABLE3 {
            // The paper's approach is consistently faster than the
            // distance-function baseline (the ~1 ms polling penalty).
            assert!(row.ours_ms.2 < row.distance_fn_ms.2, "{}", row.app);
        }
    }
}
