//! FIFO capacities, initial fills and divergence thresholds (paper §3.4).
//!
//! The reference network is assumed correctly designed: the producer never
//! blocks on a full FIFO and the consumer never stalls on an empty one.
//! The functions here derive the queue parameters that preserve that
//! property in the *duplicated* network, and the divergence threshold `D`
//! the selector/replicator use for timing-fault detection.

use crate::analysis::{default_horizon, sup_difference, CurveAnalysisError, Supremum};
use crate::curve::Curve;
use crate::pjd::PjdModel;
use crate::time::TimeNs;

/// Required FIFO capacity so a producer bounded by `producer_upper` never
/// blocks against a consumer guaranteed at least `consumer_lower` — eq. (3):
///
/// ```text
/// |F| = sup_Δ { α_P^u(Δ) − α_in^l(Δ) }
/// ```
///
/// # Errors
///
/// Returns [`CurveAnalysisError::Unbounded`] if the producer's long-run
/// rate exceeds the consumer's (no finite FIFO works).
///
/// # Examples
///
/// ```
/// use rtft_rtc::{sizing, PjdModel};
///
/// let producer = PjdModel::from_ms(30.0, 2.0, 0.0);
/// let replica2 = PjdModel::from_ms(30.0, 30.0, 0.0);
/// assert_eq!(sizing::fifo_capacity(&producer, &replica2)?, 3); // |R₂| in Table 2
/// # Ok::<(), rtft_rtc::CurveAnalysisError>(())
/// ```
pub fn fifo_capacity(producer: &PjdModel, consumer: &PjdModel) -> Result<u64, CurveAnalysisError> {
    let (u, l) = (producer.upper(), consumer.lower());
    let h = default_horizon(&u, &l);
    Ok(sup_difference(&u, &l, h)?.value)
}

/// Curve-level variant of [`fifo_capacity`] for non-PJD models.
///
/// # Errors
///
/// Same as [`sup_difference`].
pub fn fifo_capacity_curves(
    producer_upper: &dyn Curve,
    consumer_lower: &dyn Curve,
    horizon: TimeNs,
) -> Result<u64, CurveAnalysisError> {
    Ok(sup_difference(producer_upper, consumer_lower, horizon)?.value)
}

/// Initial token count `F_{C,0}` so the consumer never stalls — eq. (4):
///
/// ```text
/// F_{C,0} = sup_Δ { α_C^u(Δ) − α_out^l(Δ) }
/// ```
///
/// `producer` here is the element *feeding* the consumer (a replica output
/// in the duplicated network).
///
/// # Errors
///
/// Returns [`CurveAnalysisError::Unbounded`] if the consumer's long-run
/// rate exceeds the feeding replica's.
pub fn initial_fill(consumer: &PjdModel, producer: &PjdModel) -> Result<u64, CurveAnalysisError> {
    let (u, l) = (consumer.upper(), producer.lower());
    let h = default_horizon(&u, &l);
    Ok(sup_difference(&u, &l, h)?.value)
}

/// Capacity of a selector virtual queue `|S_i|`: the initial fill plus the
/// worst-case backlog the replica can pile on top of it:
///
/// ```text
/// |S_i| = F_{C,0,i} + sup_Δ { α_{i,out}^u(Δ) − α_C^l(Δ) }
/// ```
///
/// This reproduces the paper's Table 2 values (|S₁| = 4, |S₂| = 6 for
/// MJPEG; 4 and 8 for ADPCM) from the reconstructed Table 1 parameters.
///
/// # Errors
///
/// Returns [`CurveAnalysisError::Unbounded`] if either direction diverges.
pub fn selector_capacity(
    consumer: &PjdModel,
    replica_out: &PjdModel,
) -> Result<u64, CurveAnalysisError> {
    let init = initial_fill(consumer, replica_out)?;
    let (u, l) = (replica_out.upper(), consumer.lower());
    let h = default_horizon(&u, &l);
    let backlog = sup_difference(&u, &l, h)?.value;
    Ok(init + backlog)
}

/// Divergence threshold `D` — eq. (5): the smallest integer strictly larger
/// than the worst-case divergence between the two replicas' healthy output
/// streams:
///
/// ```text
/// D = 1 + sup_{i ≠ j, λ ≥ 0} { α_{i}^u(λ) − α_{j}^l(λ) }
/// ```
///
/// Guarantees no false positives: under fault-free conditions the observed
/// token-count difference can never reach `D`.
///
/// # Errors
///
/// Returns [`CurveAnalysisError::Unbounded`] if the replicas have unequal
/// long-run rates (divergence would grow without bound even fault-free —
/// a mis-designed duplication).
///
/// # Examples
///
/// ```
/// use rtft_rtc::{sizing, PjdModel};
///
/// let r1 = PjdModel::from_ms(30.0, 5.0, 0.0);
/// let r2 = PjdModel::from_ms(30.0, 30.0, 0.0);
/// assert_eq!(sizing::divergence_threshold(&r1, &r2)?, 4);
/// # Ok::<(), rtft_rtc::CurveAnalysisError>(())
/// ```
pub fn divergence_threshold(
    replica1: &PjdModel,
    replica2: &PjdModel,
) -> Result<u64, CurveAnalysisError> {
    let mut worst: Supremum = Supremum {
        value: 0,
        witness: TimeNs::ZERO,
    };
    for (a, b) in [(replica1, replica2), (replica2, replica1)] {
        let (u, l) = (a.upper(), b.lower());
        let h = default_horizon(&u, &l);
        let s = sup_difference(&u, &l, h)?;
        if s.value > worst.value {
            worst = s;
        }
    }
    Ok(worst.value + 1)
}

/// Interface timing models of a duplicated process network: the inputs to
/// the full §3.4 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicationModel {
    /// Producer output model (`α_P`).
    pub producer: PjdModel,
    /// Consumer input model (`α_C`).
    pub consumer: PjdModel,
    /// Token-consumption models of the two replicas (`α_{i,in}`).
    pub replica_in: [PjdModel; 2],
    /// Token-production models of the two replicas (`α_{i,out}`).
    pub replica_out: [PjdModel; 2],
}

impl DuplicationModel {
    /// Convenience constructor where each replica consumes and produces
    /// with the same model (the common case in the paper's experiments).
    pub fn symmetric(producer: PjdModel, consumer: PjdModel, replicas: [PjdModel; 2]) -> Self {
        DuplicationModel {
            producer,
            consumer,
            replica_in: replicas,
            replica_out: replicas,
        }
    }
}

/// The complete offline analysis of a duplicated network: every queue
/// capacity, initial fill, threshold and worst-case detection bound the
/// runtime framework needs. Produced by [`SizingReport::analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizingReport {
    /// Replicator FIFO capacities `|R₁|, |R₂|` (eq. (3)).
    pub replicator_capacity: [u64; 2],
    /// Selector virtual-queue capacities `|S₁|, |S₂|`.
    pub selector_capacity: [u64; 2],
    /// Selector initial fills `|S₁|₀, |S₂|₀` (eq. (4)).
    pub selector_initial_fill: [u64; 2],
    /// Divergence threshold at the selector (from output curves, eq. (5)).
    pub selector_threshold: u64,
    /// Divergence threshold at the replicator (from consumption curves).
    pub replicator_threshold: u64,
    /// Worst-case fail-stop detection latency at the selector (eq. (8)).
    pub selector_detection_bound: TimeNs,
    /// Worst-case fail-stop detection latency at the replicator.
    pub replicator_detection_bound: TimeNs,
}

impl SizingReport {
    /// Runs the full §3.4 analysis on a duplication model.
    ///
    /// # Errors
    ///
    /// Returns [`CurveAnalysisError::Unbounded`] if any producer/consumer
    /// rate pairing diverges — the duplication is mis-designed and no
    /// finite parameters exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use rtft_rtc::{sizing::{DuplicationModel, SizingReport}, PjdModel};
    ///
    /// // The reconstructed MJPEG parameters (DESIGN.md §1).
    /// let model = DuplicationModel::symmetric(
    ///     PjdModel::from_ms(30.0, 2.0, 0.0),
    ///     PjdModel::from_ms(30.0, 2.0, 0.0),
    ///     [PjdModel::from_ms(30.0, 5.0, 0.0), PjdModel::from_ms(30.0, 30.0, 0.0)],
    /// );
    /// let report = SizingReport::analyze(&model)?;
    /// assert_eq!(report.replicator_capacity, [2, 3]);
    /// assert_eq!(report.selector_capacity, [4, 6]);
    /// assert_eq!(report.selector_initial_fill, [2, 3]);
    /// # Ok::<(), rtft_rtc::CurveAnalysisError>(())
    /// ```
    pub fn analyze(model: &DuplicationModel) -> Result<Self, CurveAnalysisError> {
        let replicator_capacity = [
            fifo_capacity(&model.producer, &model.replica_in[0])?,
            fifo_capacity(&model.producer, &model.replica_in[1])?,
        ];
        let selector_initial_fill = [
            initial_fill(&model.consumer, &model.replica_out[0])?,
            initial_fill(&model.consumer, &model.replica_out[1])?,
        ];
        let selector_capacity = [
            selector_capacity(&model.consumer, &model.replica_out[0])?,
            selector_capacity(&model.consumer, &model.replica_out[1])?,
        ];
        let selector_threshold =
            divergence_threshold(&model.replica_out[0], &model.replica_out[1])?;
        let replicator_threshold =
            divergence_threshold(&model.replica_in[0], &model.replica_in[1])?;

        let selector_detection_bound = crate::detection::fail_stop_detection_bound(
            &[model.replica_out[0], model.replica_out[1]],
            selector_threshold,
        );
        let replicator_detection_bound = crate::detection::fail_stop_detection_bound(
            &[model.replica_in[0], model.replica_in[1]],
            replicator_threshold,
        );

        Ok(SizingReport {
            replicator_capacity,
            selector_capacity,
            selector_initial_fill,
            selector_threshold,
            replicator_threshold,
            selector_detection_bound,
            replicator_detection_bound,
        })
    }

    /// Physical selector queue size: `max(|S₁|, |S₂|)` (§3.1, selector
    /// rule 1 — the selector keeps a single FIFO).
    pub fn selector_queue_size(&self) -> u64 {
        self.selector_capacity[0].max(self.selector_capacity[1])
    }

    /// The full analytic bound table for this sizing — the lookup a
    /// fault-injection harness classifies observed detection latencies
    /// against. Conservative: uses the worst (largest) replicator and
    /// selector capacities over both replicas.
    pub fn detection_bounds(&self, model: &DuplicationModel) -> crate::detection::DetectionBounds {
        crate::detection::DetectionBounds::new(
            model.producer,
            model.consumer,
            model.replica_out.to_vec(),
            self.selector_threshold,
            self.replicator_capacity[0].max(self.replicator_capacity[1]),
            self.selector_queue_size(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mjpeg_model() -> DuplicationModel {
        DuplicationModel::symmetric(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 0.0),
            [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        )
    }

    fn adpcm_model() -> DuplicationModel {
        DuplicationModel::symmetric(
            PjdModel::from_ms(6.3, 1.0, 0.0),
            PjdModel::from_ms(6.3, 1.0, 0.0),
            [
                PjdModel::from_ms(6.3, 1.0, 0.0),
                PjdModel::from_ms(6.3, 16.0, 0.0),
            ],
        )
    }

    #[test]
    fn mjpeg_sizing_matches_paper_table2() {
        let r = SizingReport::analyze(&mjpeg_model()).expect("bounded");
        assert_eq!(r.replicator_capacity, [2, 3]);
        assert_eq!(r.selector_initial_fill, [2, 3]);
        assert_eq!(r.selector_capacity, [4, 6]);
        assert_eq!(r.selector_queue_size(), 6);
    }

    #[test]
    fn adpcm_sizing_matches_paper_table2() {
        let r = SizingReport::analyze(&adpcm_model()).expect("bounded");
        assert_eq!(r.replicator_capacity, [2, 4]);
        assert_eq!(r.selector_initial_fill, [2, 4]);
        assert_eq!(r.selector_capacity, [4, 8]);
        assert_eq!(r.selector_queue_size(), 8);
    }

    #[test]
    fn mjpeg_threshold() {
        let r = SizingReport::analyze(&mjpeg_model()).expect("bounded");
        // sup{α₂^u − α₁^l} = sup{α₁^u − α₂^l} = 3 ⇒ D = 4.
        assert_eq!(r.selector_threshold, 4);
        assert_eq!(r.replicator_threshold, 4);
    }

    #[test]
    fn adpcm_threshold() {
        let r = SizingReport::analyze(&adpcm_model()).expect("bounded");
        assert_eq!(r.selector_threshold, 5);
    }

    #[test]
    fn detection_bounds_exceed_thresholded_periods() {
        // The bound must cover at least (2D−1) healthy periods plus jitter.
        let r = SizingReport::analyze(&mjpeg_model()).expect("bounded");
        let d = r.selector_threshold;
        assert!(r.selector_detection_bound >= TimeNs::from_ms((2 * d - 1) * 30));
        assert!(r.selector_detection_bound < TimeNs::from_secs(1));
    }

    #[test]
    fn identical_replicas_give_minimal_threshold() {
        let m = PjdModel::periodic(TimeNs::from_ms(10));
        // sup{⌈Δ/P⌉ − ⌊Δ/P⌋} = 1 ⇒ D = 2.
        assert_eq!(divergence_threshold(&m, &m).unwrap(), 2);
    }

    #[test]
    fn mismatched_rates_are_rejected() {
        let fast = PjdModel::periodic(TimeNs::from_ms(10));
        let slow = PjdModel::periodic(TimeNs::from_ms(30));
        assert!(fifo_capacity(&fast, &slow).is_err());
        assert!(divergence_threshold(&fast, &slow).is_err());
        let model = DuplicationModel::symmetric(fast, fast, [fast, slow]);
        assert!(SizingReport::analyze(&model).is_err());
    }

    #[test]
    fn asymmetric_in_out_models() {
        // A replica that consumes tightly but produces with huge jitter.
        let model = DuplicationModel {
            producer: PjdModel::from_ms(30.0, 2.0, 0.0),
            consumer: PjdModel::from_ms(30.0, 2.0, 0.0),
            replica_in: [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 5.0, 0.0),
            ],
            replica_out: [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 60.0, 0.0),
            ],
        };
        let r = SizingReport::analyze(&model).expect("bounded");
        // Replicator side is symmetric and small...
        assert_eq!(r.replicator_capacity, [2, 2]);
        assert_eq!(r.replicator_threshold, 3);
        // ...selector side sees the slow producer.
        assert!(r.selector_capacity[1] > r.selector_capacity[0]);
        assert!(r.selector_threshold > r.replicator_threshold);
    }
}
