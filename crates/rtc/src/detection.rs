//! Worst-case fault-detection latency bounds (paper §3.4, eq. (6)–(8)).
//!
//! After a replica suffers a timing fault at time `s`, the healthy replica
//! must out-produce it by `2D − 1` tokens before the divergence counter can
//! cross the threshold `D` (the faulty replica may have been up to `D − 1`
//! tokens *ahead* when it failed). The worst-case latency is the smallest
//! window in which that surplus is guaranteed:
//!
//! ```text
//! Δ* = max_{i≠j} inf { Δ | (α_i^l − ᾱ_j^u)(Δ) ≥ 2D − 1 }       (eq. (7))
//! ```
//!
//! where `ᾱ_j^u` is the faulty replica's residual (post-fault) upper curve;
//! for a fail-stop fault `ᾱ_j^u = 0` (eq. (8)).

use crate::analysis::first_delta_reaching;
use crate::curve::{Curve, ZeroCurve};
use crate::pjd::PjdModel;
use crate::time::TimeNs;

/// Tokens the healthy replica must out-produce the faulty one by before the
/// divergence detector can fire: `2D − 1`.
pub fn detection_surplus(threshold: u64) -> u64 {
    2 * threshold.max(1) - 1
}

/// Worst-case detection latency for a *fail-stop* fault — eq. (8):
///
/// ```text
/// Δ* = max_i inf { Δ | α_i^l(Δ) ≥ 2D − 1 }
/// ```
///
/// For PJD models the infimum has the closed form `(2D−1)·P + J`, which the
/// unit tests cross-check against the generic search.
///
/// Returns [`TimeNs::MAX`] if some replica's lower curve never reaches the
/// surplus (rate zero — a degenerate model).
///
/// # Examples
///
/// ```
/// use rtft_rtc::{detection, PjdModel, TimeNs};
///
/// let replicas = [
///     PjdModel::from_ms(30.0, 5.0, 0.0),
///     PjdModel::from_ms(30.0, 30.0, 0.0),
/// ];
/// let bound = detection::fail_stop_detection_bound(&replicas, 4);
/// // 7 tokens from the ⟨30, 30⟩ replica: 7·30 + 30 = 240 ms.
/// assert_eq!(bound, TimeNs::from_ms(240));
/// ```
pub fn fail_stop_detection_bound(replicas: &[PjdModel; 2], threshold: u64) -> TimeNs {
    let surplus = detection_surplus(threshold);
    let mut worst = TimeNs::ZERO;
    for r in replicas {
        let lower = r.lower();
        let horizon = r.period * (surplus + 4) + r.jitter + r.jitter;
        match first_delta_reaching(&lower, &ZeroCurve, surplus, horizon) {
            Some(t) => worst = worst.max(t),
            None => return TimeNs::MAX,
        }
    }
    worst
}

/// Worst-case detection latency when the faulty replica keeps limping along
/// bounded by `faulty_residual_upper` — eq. (6)/(7) in full generality.
///
/// Returns `None` if the surplus is never reached within `horizon` (the
/// residual rate is too close to the healthy rate: the "fault" is not
/// detectable by divergence counting, or the horizon is too short).
///
/// # Examples
///
/// ```
/// use rtft_rtc::{detection, PjdModel, TimeNs};
///
/// let healthy = PjdModel::from_ms(30.0, 5.0, 0.0);
/// // Faulty replica degraded to one token every 90 ms.
/// let residual = PjdModel::from_ms(90.0, 0.0, 0.0);
/// let t = detection::degraded_detection_bound(
///     &healthy,
///     &residual.upper(),
///     4,
///     TimeNs::from_secs(10),
/// );
/// assert!(t.expect("detectable") > TimeNs::from_ms(7 * 30 + 5));
/// ```
pub fn degraded_detection_bound(
    healthy: &PjdModel,
    faulty_residual_upper: &dyn Curve,
    threshold: u64,
    horizon: TimeNs,
) -> Option<TimeNs> {
    let surplus = detection_surplus(threshold);
    first_delta_reaching(&healthy.lower(), faulty_residual_upper, surplus, horizon)
}

/// Worst-case detection latency of the replicator's *overflow* detector
/// (§3.3, "fault detection at the replicator channel"): the producer
/// notices a stopped replica when its write attempt finds the FIFO full.
///
/// Starting from an empty FIFO (worst case), the producer must generate
/// `capacity + 1` tokens before the failing write attempt occurs; the bound
/// is `inf { Δ | α_P^l(Δ) ≥ capacity + 1 }`.
///
/// Returns [`TimeNs::MAX`] for a rate-zero producer.
pub fn replicator_overflow_bound(producer: &PjdModel, capacity: u64) -> TimeNs {
    let lower = producer.lower();
    let target = capacity + 1;
    let horizon = producer.period * (target + 4) + producer.jitter + producer.jitter;
    first_delta_reaching(&lower, &ZeroCurve, target, horizon).unwrap_or(TimeNs::MAX)
}

/// Worst-case detection latency of the selector's *stall* detector (§3.3,
/// first method): replica `i` is flagged when `space_i` exceeds `|S_i|`,
/// i.e. after the consumer performs `capacity + 1` reads past the replica's
/// last write. The bound is `inf { Δ | α_C^l(Δ) ≥ capacity + 1 }`.
///
/// Returns [`TimeNs::MAX`] for a rate-zero consumer.
pub fn selector_stall_bound(consumer: &PjdModel, capacity: u64) -> TimeNs {
    let lower = consumer.lower();
    let target = capacity + 1;
    let horizon = consumer.period * (target + 4) + consumer.jitter + consumer.jitter;
    first_delta_reaching(&lower, &ZeroCurve, target, horizon).unwrap_or(TimeNs::MAX)
}

/// Aggregated analytic detection bounds for one replicated stage — the
/// single lookup a fault-injection harness queries when classifying an
/// observed detection latency against the paper's guarantees.
///
/// The three detectors of §3.3/§3.4 each carry their own worst-case bound:
///
/// * [`fail_stop`](Self::fail_stop) — selector divergence latch for a
///   fail-stop replica (eq. (8); worst replica, closed form
///   `(2D − 1)·P + J`);
/// * [`overflow`](Self::overflow) — replicator full-FIFO latch
///   ([`replicator_overflow_bound`], worst replicator capacity);
/// * [`stall`](Self::stall) — selector space-overrun latch
///   ([`selector_stall_bound`], worst selector capacity).
///
/// A permanently silent replica trips *all* of them, so the end-to-end
/// guarantee for a permanent timing fault is the minimum
/// ([`permanent_timing`](Self::permanent_timing)). Degraded (slow-by) and
/// value faults have dedicated lookups.
#[derive(Debug, Clone)]
pub struct DetectionBounds {
    producer: PjdModel,
    consumer: PjdModel,
    replicas: Vec<PjdModel>,
    threshold: u64,
    /// Worst-case selector divergence-latch latency for a fail-stop replica.
    pub fail_stop: TimeNs,
    /// Worst-case replicator overflow-latch latency for a stopped replica.
    pub overflow: TimeNs,
    /// Worst-case selector stall-latch latency for a stopped replica.
    pub stall: TimeNs,
}

impl DetectionBounds {
    /// Computes the bound table for a stage with the given producer,
    /// consumer, replica output models, divergence threshold `D`, and the
    /// worst (largest) replicator / selector FIFO capacities.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two replicas are supplied.
    pub fn new(
        producer: PjdModel,
        consumer: PjdModel,
        replicas: Vec<PjdModel>,
        threshold: u64,
        replicator_capacity: u64,
        selector_capacity: u64,
    ) -> Self {
        assert!(replicas.len() >= 2, "detection needs at least two replicas");
        let fail_stop = replicas
            .iter()
            .map(|r| fail_stop_detection_bound(&[*r, *r], threshold))
            .max()
            .expect("non-empty replica set");
        let overflow = replicator_overflow_bound(&producer, replicator_capacity);
        let stall = selector_stall_bound(&consumer, selector_capacity);
        DetectionBounds {
            producer,
            consumer,
            replicas,
            threshold,
            fail_stop,
            overflow,
            stall,
        }
    }

    /// The divergence threshold `D` the bounds were computed for.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The producer model feeding the replicator.
    pub fn producer(&self) -> &PjdModel {
        &self.producer
    }

    /// The consumer model draining the selector.
    pub fn consumer(&self) -> &PjdModel {
        &self.consumer
    }

    /// End-to-end guarantee for a *permanent* timing fault (fail-stop): the
    /// replica stops both consuming and producing, so every detector races
    /// and the first to its own bound latches — the minimum of the three.
    pub fn permanent_timing(&self) -> TimeNs {
        self.fail_stop.min(self.overflow).min(self.stall)
    }

    /// Worst-case divergence-latch latency for a replica degraded to
    /// `factor ×` its nominal period (eq. (7) with residual upper curve
    /// `ᾱ^u = α^u` of the slowed model). `None` when the slow-down is too
    /// mild for the healthy replicas to ever build the `2D − 1` surplus.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0` (that is not a degradation).
    pub fn slow_by(&self, factor: f64) -> Option<TimeNs> {
        assert!(factor > 1.0, "slow-down factor must exceed 1");
        let surplus = detection_surplus(self.threshold);
        let mut worst: Option<TimeNs> = None;
        for (j, faulty) in self.replicas.iter().enumerate() {
            let stretched = TimeNs::from_ns((faulty.period.as_ns() as f64 * factor).ceil() as u64);
            let residual = PjdModel::new(stretched, faulty.jitter, faulty.delay);
            let horizon = residual.period * (surplus + 8) + residual.jitter + TimeNs::from_secs(1);
            // Any healthy replica latching suffices, so the guarantee for
            // faulty replica `j` is the tightest healthy bound; the table
            // entry is the worst such guarantee over all choices of `j`.
            let tightest = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != j)
                .filter_map(|(_, healthy)| {
                    degraded_detection_bound(healthy, &residual.upper(), self.threshold, horizon)
                })
                .min()?;
            worst = Some(worst.map_or(tightest, |w: TimeNs| w.max(tightest)));
        }
        worst
    }

    /// Heuristic latch bound for *value* faults under an n-modular voting
    /// selector. **Not from the paper** (which detects timing faults only):
    /// a corrupted group is decided once every replica has voted on it, and
    /// replicas can trail the corrupter by at most `D` groups before the
    /// timing detectors latch them first, so the vote completes within
    /// `(D + 1)` periods plus jitter of the slowest replica.
    pub fn value_vote(&self) -> TimeNs {
        let slowest = self
            .replicas
            .iter()
            .max_by_key(|r| r.period)
            .expect("non-empty replica set");
        let jitter = self
            .replicas
            .iter()
            .map(|r| r.jitter)
            .max()
            .expect("non-empty replica set");
        slowest.period * (self.threshold + 1) + jitter
    }
}

/// The PJD model of the *sampled* projection of a full-rate stream: every
/// `k`-th token of a ⟨P, J, D⟩ stream arrives with period `k·P` and the
/// original jitter and delay (decimation does not re-time the survivors).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn sampled_stream_model(full: &PjdModel, k: u64) -> PjdModel {
    assert!(k > 0, "sampling stride must be positive");
    PjdModel::new(full.period * k, full.jitter, full.delay)
}

/// Analytic detection bounds for the *heterogeneous sampled-checker*
/// structure: a full-rate main replica spot-checked by a lightweight
/// checker that re-verifies every `k`-th token digest.
///
/// Unlike [`DetectionBounds`], there is no selector stall detector — the
/// checker legally runs at `1/k` of the main rate, so the space counters
/// are meaningless and the stall rule is disabled. Two detectors remain,
/// plus the value check:
///
/// * [`sampled_divergence`](Self::sampled_divergence) — eq. (8) applied to
///   the **sample streams**: main's sample counter (one per `k` tokens)
///   versus the checker's vote counter, with the sampled threshold `D_s`
///   derived from the period-stretched models. Detection latency is a
///   function of `k`: `≈ (2·D_s − 1)·k·P + J`.
/// * [`overflow`](Self::overflow) — the replicator's full-FIFO latch on the
///   main queue, identical to the duplicated case (full-rate, independent
///   of `k`).
/// * [`value`](Self::value) — worst-case latency until a permanently
///   corrupting main is caught by a digest mismatch: the corruption must
///   reach the next sampled token (up to `k·P` away) and survive the
///   checker's own sampled-rate service (another `k·P` plus jitters).
#[derive(Debug, Clone)]
pub struct HeteroBounds {
    producer: PjdModel,
    main: PjdModel,
    checker: PjdModel,
    k: u64,
    sampled_threshold: u64,
    /// Worst-case sampled-divergence latch latency for a fail-stop main or
    /// checker (eq. (8) on the sample streams).
    pub sampled_divergence: TimeNs,
    /// Worst-case replicator overflow-latch latency for a main that stops
    /// consuming.
    pub overflow: TimeNs,
    /// Worst-case digest-mismatch latch latency for a permanently
    /// corrupting main.
    pub value: TimeNs,
}

impl HeteroBounds {
    /// Computes the hetero bound table: `main` is the full-rate replica
    /// output model, `checker` the checker's *vote* output model (already
    /// at the sampled rate, period `≈ k·P`), `sampled_threshold` the
    /// divergence threshold `D_s` over the two sample streams, and
    /// `main_capacity` the main replicator FIFO size.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(
        producer: PjdModel,
        main: PjdModel,
        checker: PjdModel,
        k: u64,
        sampled_threshold: u64,
        main_capacity: u64,
    ) -> Self {
        let main_sampled = sampled_stream_model(&main, k);
        let sampled_divergence =
            fail_stop_detection_bound(&[main_sampled, checker], sampled_threshold);
        let overflow = replicator_overflow_bound(&producer, main_capacity);
        let value = main.period * (2 * k) + main.jitter + checker.jitter + checker.delay;
        HeteroBounds {
            producer,
            main,
            checker,
            k,
            sampled_threshold,
            sampled_divergence,
            overflow,
            value,
        }
    }

    /// The sampling stride `k` (every `k`-th main token is re-verified).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The sampled divergence threshold `D_s`.
    pub fn sampled_threshold(&self) -> u64 {
        self.sampled_threshold
    }

    /// The producer model feeding the sampled replicator.
    pub fn producer(&self) -> &PjdModel {
        &self.producer
    }

    /// The full-rate main replica output model.
    pub fn main(&self) -> &PjdModel {
        &self.main
    }

    /// The checker vote output model (sampled rate).
    pub fn checker(&self) -> &PjdModel {
        &self.checker
    }

    /// End-to-end guarantee for a *permanent* timing fault of the main
    /// replica: the sampled-divergence and overflow detectors race (there
    /// is no stall detector in this structure).
    pub fn permanent_timing(&self) -> TimeNs {
        self.sampled_divergence.min(self.overflow)
    }

    /// Worst-case sampled-divergence latch latency for a main replica
    /// degraded to `factor ×` its nominal period — eq. (7) on the sample
    /// streams, with the checker as the healthy side and the stretched,
    /// `k`-decimated main as the residual. `None` when the slow-down never
    /// builds the `2·D_s − 1` sample surplus.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn slow_by(&self, factor: f64) -> Option<TimeNs> {
        assert!(factor > 1.0, "slow-down factor must exceed 1");
        let surplus = detection_surplus(self.sampled_threshold);
        let main_sampled = sampled_stream_model(&self.main, self.k);
        let stretched =
            TimeNs::from_ns((main_sampled.period.as_ns() as f64 * factor).ceil() as u64);
        let residual = PjdModel::new(stretched, main_sampled.jitter, main_sampled.delay);
        let horizon = residual.period * (surplus + 8) + residual.jitter + TimeNs::from_secs(1);
        degraded_detection_bound(
            &self.checker,
            &residual.upper(),
            self.sampled_threshold,
            horizon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::StaircaseCurve;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn surplus_is_2d_minus_1() {
        assert_eq!(detection_surplus(4), 7);
        assert_eq!(detection_surplus(1), 1);
        assert_eq!(detection_surplus(0), 1, "threshold clamps to 1");
    }

    #[test]
    fn fail_stop_closed_form_mjpeg() {
        let replicas = [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ];
        // D = 4 ⇒ surplus 7. Worst replica is ⟨30, 30⟩: 7·30 + 30 = 240.
        assert_eq!(fail_stop_detection_bound(&replicas, 4), ms(240));
        // The tighter replica alone would give 7·30 + 5 = 215.
        let tight = [replicas[0], replicas[0]];
        assert_eq!(fail_stop_detection_bound(&tight, 4), ms(215));
    }

    #[test]
    fn fail_stop_closed_form_adpcm() {
        let replicas = [
            PjdModel::from_ms(6.3, 1.0, 0.0),
            PjdModel::from_ms(6.3, 16.0, 0.0),
        ];
        // D = 5 ⇒ surplus 9. Worst: 9·6.3 + 16 = 72.7 ms.
        assert_eq!(
            fail_stop_detection_bound(&replicas, 5),
            TimeNs::from_ms_f64(72.7)
        );
    }

    #[test]
    fn degraded_fault_takes_longer_than_fail_stop() {
        let healthy = PjdModel::from_ms(30.0, 5.0, 0.0);
        let residual = PjdModel::periodic(ms(90));
        let fail_stop = fail_stop_detection_bound(&[healthy, healthy], 4);
        let degraded =
            degraded_detection_bound(&healthy, &residual.upper(), 4, TimeNs::from_secs(10))
                .expect("detectable");
        assert!(degraded > fail_stop);
    }

    #[test]
    fn undetectable_degradation_returns_none() {
        // Faulty replica "degrades" to the same rate as the healthy one:
        // the divergence never accumulates.
        let healthy = PjdModel::periodic(ms(30));
        let residual = PjdModel::periodic(ms(30));
        assert_eq!(
            degraded_detection_bound(&healthy, &residual.upper(), 4, TimeNs::from_secs(10)),
            None
        );
    }

    #[test]
    fn burst_residual_delays_detection() {
        // A faulty replica that dumps a final burst of 5 tokens then dies.
        let healthy = PjdModel::from_ms(30.0, 5.0, 0.0);
        let burst = StaircaseCurve::new(vec![(TimeNs::ZERO, 5)]);
        let with_burst =
            degraded_detection_bound(&healthy, &burst, 4, TimeNs::from_secs(20)).expect("bounded");
        let without = fail_stop_detection_bound(&[healthy, healthy], 4);
        // The burst adds 5 extra tokens the healthy replica must overcome.
        assert_eq!(with_burst, ms((7 + 5) * 30 + 5));
        assert!(with_burst > without);
    }

    #[test]
    fn replicator_overflow_bound_closed_form() {
        let producer = PjdModel::from_ms(30.0, 2.0, 0.0);
        // capacity 3 ⇒ 4th token triggers: 4·30 + 2 = 122 ms.
        assert_eq!(replicator_overflow_bound(&producer, 3), ms(122));
    }

    #[test]
    fn selector_stall_bound_closed_form() {
        let consumer = PjdModel::from_ms(30.0, 2.0, 0.0);
        assert_eq!(selector_stall_bound(&consumer, 6), ms(7 * 30 + 2));
    }

    #[test]
    fn bigger_threshold_means_longer_detection() {
        let replicas = [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ];
        let mut prev = TimeNs::ZERO;
        for d in 1..8 {
            let b = fail_stop_detection_bound(&replicas, d);
            assert!(b > prev, "bound must grow with D");
            prev = b;
        }
    }

    fn mjpeg_bounds() -> DetectionBounds {
        DetectionBounds::new(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 120.0),
            vec![
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
            4,
            3,
            6,
        )
    }

    #[test]
    fn bound_table_matches_closed_forms() {
        let b = mjpeg_bounds();
        // Divergence: worst replica ⟨30, 30⟩, D = 4 ⇒ 7·30 + 30 = 240.
        assert_eq!(b.fail_stop, ms(240));
        // Overflow: producer ⟨30, 2⟩ must emit 4 tokens; α^l guarantees
        // them only after 4·30 + 2 = 122 ms.
        assert_eq!(b.overflow, ms(122));
        // Stall: consumer must perform 7 reads; 7·30 + 2 = 212 ms.
        assert_eq!(b.stall, ms(212));
        // The end-to-end permanent-fault guarantee is the fastest detector.
        assert_eq!(b.permanent_timing(), ms(122));
        assert_eq!(b.threshold(), 4);
        assert_eq!(b.producer().period, ms(30));
        assert_eq!(b.consumer().delay, ms(120));
    }

    #[test]
    fn slow_by_sits_between_healthy_and_fail_stop() {
        let b = mjpeg_bounds();
        // A 3× slow-down is detectable but strictly slower than fail-stop
        // (the limping replica still contributes residual tokens).
        let degraded = b.slow_by(3.0).expect("3x slow-down is detectable");
        assert!(degraded > b.fail_stop, "{degraded:?} vs {:?}", b.fail_stop);
        assert!(degraded < ms(2_000));
        // A harsher slow-down is caught faster than a milder one.
        let harsher = b.slow_by(10.0).expect("10x slow-down is detectable");
        assert!(harsher < degraded);
        // A 1.01× drift never builds the 2D−1 surplus within the horizon.
        assert_eq!(b.slow_by(1.01), None);
    }

    #[test]
    #[should_panic(expected = "slow-down factor must exceed 1")]
    fn slow_by_rejects_speedups() {
        mjpeg_bounds().slow_by(0.5);
    }

    #[test]
    fn sampled_model_stretches_period_only() {
        let main = PjdModel::from_ms(30.0, 5.0, 0.0);
        let s = sampled_stream_model(&main, 4);
        assert_eq!(s.period, ms(120));
        assert_eq!(s.jitter, ms(5));
        assert_eq!(s.delay, TimeNs::ZERO);
    }

    fn hetero(k: u64, d_s: u64) -> HeteroBounds {
        HeteroBounds::new(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 5.0, 0.0),
            sampled_stream_model(&PjdModel::from_ms(30.0, 8.0, 0.0), k),
            k,
            d_s,
            3,
        )
    }

    #[test]
    fn hetero_bounds_match_closed_forms() {
        let b = hetero(4, 2);
        // Sampled divergence, D_s = 2 ⇒ surplus 3 samples. Worst stream is
        // the checker ⟨120, 8⟩: 3·120 + 8 = 368 ms.
        assert_eq!(b.sampled_divergence, ms(368));
        // Overflow identical to duplicated: 4·30 + 2 = 122 ms, so the
        // permanent-timing guarantee is unchanged by the sampling stride.
        assert_eq!(b.overflow, ms(122));
        assert_eq!(b.permanent_timing(), ms(122));
        // Value: 2k·P + J_main + J_chk = 8·30 + 5 + 8 = 253 ms.
        assert_eq!(b.value, ms(253));
        assert_eq!(b.k(), 4);
        assert_eq!(b.sampled_threshold(), 2);
    }

    #[test]
    fn hetero_sampled_latency_grows_linearly_with_k() {
        let mut prev = TimeNs::ZERO;
        for k in [1, 4, 16, 64] {
            let b = hetero(k, 2);
            assert!(
                b.sampled_divergence > prev,
                "sampled bound must grow with k"
            );
            assert!(b.value > if k == 1 { TimeNs::ZERO } else { prev });
            prev = b.sampled_divergence;
        }
        // Closed form at k = 64: 3·(64·30) + 8 = 5768 ms.
        assert_eq!(hetero(64, 2).sampled_divergence, ms(5768));
    }

    #[test]
    fn value_vote_bound_tracks_slowest_replica() {
        let b = mjpeg_bounds();
        // (D + 1)·P_max + J_max = 5·30 + 30 = 180 ms.
        assert_eq!(b.value_vote(), ms(180));
    }

    #[test]
    fn sizing_report_bridges_to_bounds() {
        use crate::sizing::{DuplicationModel, SizingReport};
        let model = DuplicationModel::symmetric(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 0.0),
            [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        );
        let report = SizingReport::analyze(&model).expect("bounded model");
        let b = report.detection_bounds(&model);
        // Table 2: D = 4 ⇒ the divergence bound is the 240 ms of eq. (8).
        assert_eq!(b.fail_stop, report.selector_detection_bound);
        assert_eq!(b.fail_stop, ms(240));
        assert!(b.permanent_timing() <= b.fail_stop);
    }
}
