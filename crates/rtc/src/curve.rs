//! Arrival curves and curve algebra.
//!
//! An *arrival curve* bounds the number of tokens (events) a stream can
//! carry in any half-open time window `[s, s + Δ)`. An upper curve `α^u(Δ)`
//! is the maximum, a lower curve `α^l(Δ)` the minimum, over all window
//! placements `s` — see eq. (2) of the paper and Chakraborty et al.,
//! RTSS 2006.
//!
//! All curves here are *integer staircases over integer nanoseconds*: they
//! are non-decreasing, change value only at countably many breakpoints, and
//! are evaluated exactly. This makes the sup/inf searches in
//! [`crate::sizing`] and [`crate::detection`] exact rather than sampled.
//!
//! # Conventions
//!
//! * Window semantics are half-open `[s, s + Δ)`, so every curve satisfies
//!   `eval(0) == 0`.
//! * Curves are **left-continuous** staircases: `eval(b)` is the value *at*
//!   a breakpoint `b`, and the post-jump value is visible at `b + 1` ns.
//!   Searches therefore probe both `b` and `b + 1` for each breakpoint.

use crate::time::TimeNs;
use std::fmt;
use std::sync::Arc;

/// A non-decreasing integer staircase curve over integer-nanosecond window
/// lengths.
///
/// Implementors must guarantee:
///
/// * `eval(TimeNs::ZERO) == 0`;
/// * `eval` is non-decreasing;
/// * between consecutive values returned by [`Curve::jump_points`] the curve
///   is constant (jump points may be over-approximated — extra points are
///   harmless, missing points are not).
pub trait Curve: fmt::Debug + Send + Sync {
    /// Number of tokens bounded for a window of length `delta`.
    fn eval(&self, delta: TimeNs) -> u64;

    /// All `Δ ∈ (0, horizon]` at which the curve *may* change value.
    ///
    /// Used by sup/inf searches; over-approximation is allowed.
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs>;

    /// Long-run growth rate, as tokens per nanosecond, expressed as the
    /// exact rational `tokens / per`. `None` means the curve is eventually
    /// constant (rate zero).
    fn long_run_rate(&self) -> Option<Rate>;

    /// Length of the initial transient after which the curve is in its
    /// periodic steady state (`eval(Δ + p) = eval(Δ) + k` for the long-run
    /// rate `k / p`). For a PJD curve this is the jitter. Used to size
    /// default search horizons; over-approximation is allowed.
    fn transient(&self) -> TimeNs {
        TimeNs::ZERO
    }
}

impl<C: Curve + ?Sized> Curve for &C {
    fn eval(&self, delta: TimeNs) -> u64 {
        (**self).eval(delta)
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        (**self).jump_points(horizon)
    }
    fn long_run_rate(&self) -> Option<Rate> {
        (**self).long_run_rate()
    }
    fn transient(&self) -> TimeNs {
        (**self).transient()
    }
}

impl<C: Curve + ?Sized> Curve for Arc<C> {
    fn eval(&self, delta: TimeNs) -> u64 {
        (**self).eval(delta)
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        (**self).jump_points(horizon)
    }
    fn long_run_rate(&self) -> Option<Rate> {
        (**self).long_run_rate()
    }
    fn transient(&self) -> TimeNs {
        (**self).transient()
    }
}

impl Curve for Box<dyn Curve> {
    fn eval(&self, delta: TimeNs) -> u64 {
        (**self).eval(delta)
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        (**self).jump_points(horizon)
    }
    fn long_run_rate(&self) -> Option<Rate> {
        (**self).long_run_rate()
    }
    fn transient(&self) -> TimeNs {
        (**self).transient()
    }
}

/// An exact rational token rate: `tokens` tokens every `per` nanoseconds.
///
/// Rates compare by cross-multiplication so `1/30ms` vs `2/60ms` are equal
/// without any floating-point round-off.
///
/// # Examples
///
/// ```
/// use rtft_rtc::{Rate, TimeNs};
///
/// let a = Rate::new(1, TimeNs::from_ms(30));
/// let b = Rate::new(2, TimeNs::from_ms(60));
/// assert_eq!(a, b);
/// assert!(Rate::new(1, TimeNs::from_ms(20)) > a);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rate {
    tokens: u64,
    per: TimeNs,
}

impl Rate {
    /// Creates a rate of `tokens` tokens per `per` duration.
    ///
    /// # Panics
    ///
    /// Panics if `per` is zero.
    pub fn new(tokens: u64, per: TimeNs) -> Self {
        assert!(per > TimeNs::ZERO, "rate period must be positive");
        Rate { tokens, per }
    }

    /// Zero tokens per second.
    pub fn zero() -> Self {
        Rate {
            tokens: 0,
            per: TimeNs::from_secs(1),
        }
    }

    /// Token count component.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Duration component.
    pub fn per(&self) -> TimeNs {
        self.per
    }

    /// Rate as fractional tokens per second.
    pub fn tokens_per_sec(&self) -> f64 {
        self.tokens as f64 / self.per.as_secs_f64()
    }

    fn cross(&self, other: &Rate) -> (u128, u128) {
        (
            self.tokens as u128 * other.per.as_ns() as u128,
            other.tokens as u128 * self.per.as_ns() as u128,
        )
    }
}

impl PartialEq for Rate {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = self.cross(other);
        a == b
    }
}

impl Eq for Rate {}

impl PartialOrd for Rate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (a, b) = self.cross(other);
        a.cmp(&b)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} per {}", self.tokens, self.per)
    }
}

/// The identically-zero curve; the upper arrival curve of a fail-stopped
/// replica (`ᾱ^u = 0` in eq. (8)).
///
/// # Examples
///
/// ```
/// use rtft_rtc::{Curve, ZeroCurve, TimeNs};
///
/// assert_eq!(ZeroCurve.eval(TimeNs::from_secs(100)), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroCurve;

impl Curve for ZeroCurve {
    fn eval(&self, _delta: TimeNs) -> u64 {
        0
    }
    fn jump_points(&self, _horizon: TimeNs) -> Vec<TimeNs> {
        Vec::new()
    }
    fn long_run_rate(&self) -> Option<Rate> {
        None
    }
}

/// An explicit staircase curve given by `(breakpoint, value)` pairs, with an
/// optional eventually-periodic extension.
///
/// The curve evaluates to `value_k` for `Δ ∈ (b_{k-1}, b_k]`-style
/// left-continuous semantics: concretely, `eval(Δ)` is the value of the last
/// point whose breakpoint is `< Δ`, i.e. a point `(b, v)` means "from just
/// after `b` onwards the curve is `v`". A point at `TimeNs::ZERO` sets the
/// value immediately after 0.
///
/// Beyond the last explicit point, an extension `(period, increment)` makes
/// the curve repeat: `eval(Δ + period) = eval(Δ) + increment`.
///
/// # Examples
///
/// ```
/// use rtft_rtc::{Curve, StaircaseCurve, TimeNs};
///
/// // One token immediately, one more after every 10ms.
/// let c = StaircaseCurve::new(vec![(TimeNs::ZERO, 1)])
///     .with_extension(TimeNs::from_ms(10), 1);
/// assert_eq!(c.eval(TimeNs::from_ns(1)), 1);
/// assert_eq!(c.eval(TimeNs::from_ms(10)), 1);
/// assert_eq!(c.eval(TimeNs::from_ms(10) + TimeNs::from_ns(1)), 2);
/// assert_eq!(c.eval(TimeNs::from_ms(35)), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaircaseCurve {
    points: Vec<(TimeNs, u64)>,
    extension: Option<(TimeNs, u64)>,
}

impl StaircaseCurve {
    /// Creates a staircase from `(breakpoint, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the breakpoints are not strictly increasing or the values
    /// are decreasing.
    pub fn new(points: Vec<(TimeNs, u64)>) -> Self {
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "breakpoints must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "staircase values must be non-decreasing");
        }
        StaircaseCurve {
            points,
            extension: None,
        }
    }

    /// Adds an eventually-periodic extension: beyond the last explicit
    /// point, the curve gains `increment` tokens every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_extension(mut self, period: TimeNs, increment: u64) -> Self {
        assert!(period > TimeNs::ZERO, "extension period must be positive");
        self.extension = Some((period, increment));
        self
    }

    /// The explicit points of the staircase.
    pub fn points(&self) -> &[(TimeNs, u64)] {
        &self.points
    }

    fn last_point(&self) -> (TimeNs, u64) {
        self.points.last().copied().unwrap_or((TimeNs::ZERO, 0))
    }
}

impl Curve for StaircaseCurve {
    fn eval(&self, delta: TimeNs) -> u64 {
        if delta == TimeNs::ZERO {
            return 0;
        }
        let (last_b, last_v) = self.last_point();
        if delta > last_b {
            if let Some((period, inc)) = self.extension {
                // Number of whole extension periods strictly before `delta`.
                let beyond = delta - last_b;
                // Left-continuous: the k-th increment becomes visible just
                // after last_b + k*period.
                let k = (beyond.as_ns() - 1) / period.as_ns();
                return last_v + k * inc;
            }
            return last_v;
        }
        // Value of the last point with breakpoint < delta.
        match self.points.partition_point(|(b, _)| *b < delta) {
            0 => 0,
            i => self.points[i - 1].1,
        }
    }

    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        let mut out: Vec<TimeNs> = self
            .points
            .iter()
            .map(|(b, _)| *b)
            .filter(|b| *b <= horizon)
            .collect();
        if let Some((period, inc)) = self.extension {
            if inc > 0 {
                let (last_b, _) = self.last_point();
                let mut b = last_b + period;
                while b <= horizon {
                    out.push(b);
                    b += period;
                }
            }
        }
        out
    }

    fn long_run_rate(&self) -> Option<Rate> {
        match self.extension {
            Some((period, inc)) if inc > 0 => Some(Rate::new(inc, period)),
            _ => None,
        }
    }

    fn transient(&self) -> TimeNs {
        self.last_point().0
    }
}

/// Pointwise minimum of two curves (e.g. combining a jitter bound with a
/// minimum-distance bound).
#[derive(Debug, Clone)]
pub struct MinCurve<A, B>(pub A, pub B);

impl<A: Curve, B: Curve> Curve for MinCurve<A, B> {
    fn transient(&self) -> TimeNs {
        self.0.transient().max(self.1.transient())
    }

    fn eval(&self, delta: TimeNs) -> u64 {
        self.0.eval(delta).min(self.1.eval(delta))
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        let mut v = self.0.jump_points(horizon);
        v.extend(self.1.jump_points(horizon));
        v.sort_unstable();
        v.dedup();
        v
    }
    fn long_run_rate(&self) -> Option<Rate> {
        match (self.0.long_run_rate(), self.1.long_run_rate()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            // min with an eventually-constant curve is eventually constant
            _ => None,
        }
    }
}

/// Pointwise maximum of two curves.
#[derive(Debug, Clone)]
pub struct MaxCurve<A, B>(pub A, pub B);

impl<A: Curve, B: Curve> Curve for MaxCurve<A, B> {
    fn transient(&self) -> TimeNs {
        self.0.transient().max(self.1.transient())
    }

    fn eval(&self, delta: TimeNs) -> u64 {
        self.0.eval(delta).max(self.1.eval(delta))
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        let mut v = self.0.jump_points(horizon);
        v.extend(self.1.jump_points(horizon));
        v.sort_unstable();
        v.dedup();
        v
    }
    fn long_run_rate(&self) -> Option<Rate> {
        match (self.0.long_run_rate(), self.1.long_run_rate()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

/// Pointwise sum of two curves (aggregate stream of two sources).
#[derive(Debug, Clone)]
pub struct SumCurve<A, B>(pub A, pub B);

impl<A: Curve, B: Curve> Curve for SumCurve<A, B> {
    fn transient(&self) -> TimeNs {
        self.0.transient().max(self.1.transient())
    }

    fn eval(&self, delta: TimeNs) -> u64 {
        self.0.eval(delta) + self.1.eval(delta)
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        let mut v = self.0.jump_points(horizon);
        v.extend(self.1.jump_points(horizon));
        v.sort_unstable();
        v.dedup();
        v
    }
    fn long_run_rate(&self) -> Option<Rate> {
        match (self.0.long_run_rate(), self.1.long_run_rate()) {
            (Some(a), Some(b)) => {
                // a/pa + b/pb = (a*pb + b*pa) / (pa*pb); keep within u64 by
                // falling back to a common nanosecond denominator when small.
                let pa = a.per().as_ns() as u128;
                let pb = b.per().as_ns() as u128;
                let num = a.tokens() as u128 * pb + b.tokens() as u128 * pa;
                let den = pa * pb;
                // Reduce by gcd to keep magnitudes sane.
                let g = gcd_u128(num, den).max(1);
                let (num, den) = (num / g, den / g);
                if num <= u64::MAX as u128 && den <= u64::MAX as u128 {
                    Some(Rate::new(num as u64, TimeNs::from_ns(den as u64)))
                } else {
                    // Extremely large reduced fraction: approximate.
                    Some(Rate::new(
                        (a.tokens_per_sec() + b.tokens_per_sec()).round() as u64,
                        TimeNs::from_secs(1),
                    ))
                }
            }
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        }
    }
}

/// Right-shifts a curve in time by a constant delay: the stream's bound
/// after passing through an element with constant latency.
///
/// `eval(Δ) = inner(Δ - delay)` (zero for `Δ ≤ delay`).
#[derive(Debug, Clone)]
pub struct DelayCurve<C> {
    inner: C,
    delay: TimeNs,
}

impl<C: Curve> DelayCurve<C> {
    /// Wraps `inner` with a constant delay.
    pub fn new(inner: C, delay: TimeNs) -> Self {
        DelayCurve { inner, delay }
    }
}

impl<C: Curve> Curve for DelayCurve<C> {
    fn transient(&self) -> TimeNs {
        self.inner.transient() + self.delay
    }

    fn eval(&self, delta: TimeNs) -> u64 {
        self.inner.eval(delta.saturating_sub(self.delay))
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        self.inner
            .jump_points(horizon.saturating_sub(self.delay))
            .into_iter()
            .map(|b| b + self.delay)
            .filter(|b| *b <= horizon)
            .collect()
    }
    fn long_run_rate(&self) -> Option<Rate> {
        self.inner.long_run_rate()
    }
}

/// Scales a curve's token counts by an integer factor (e.g. a process that
/// emits `k` output tokens per input token).
#[derive(Debug, Clone)]
pub struct ScaleCurve<C> {
    inner: C,
    factor: u64,
}

impl<C: Curve> ScaleCurve<C> {
    /// Wraps `inner`, multiplying all counts by `factor`.
    pub fn new(inner: C, factor: u64) -> Self {
        ScaleCurve { inner, factor }
    }
}

impl<C: Curve> Curve for ScaleCurve<C> {
    fn transient(&self) -> TimeNs {
        self.inner.transient()
    }

    fn eval(&self, delta: TimeNs) -> u64 {
        self.inner.eval(delta) * self.factor
    }
    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        self.inner.jump_points(horizon)
    }
    fn long_run_rate(&self) -> Option<Rate> {
        self.inner
            .long_run_rate()
            .map(|r| Rate::new(r.tokens() * self.factor, r.per()))
    }
}

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn zero_curve_is_zero_everywhere() {
        assert_eq!(ZeroCurve.eval(TimeNs::ZERO), 0);
        assert_eq!(ZeroCurve.eval(TimeNs::MAX), 0);
        assert!(ZeroCurve.jump_points(ms(100)).is_empty());
        assert!(ZeroCurve.long_run_rate().is_none());
    }

    #[test]
    fn staircase_basic_eval() {
        let c = StaircaseCurve::new(vec![(TimeNs::ZERO, 1), (ms(10), 2), (ms(20), 5)]);
        assert_eq!(c.eval(TimeNs::ZERO), 0);
        assert_eq!(c.eval(TimeNs::from_ns(1)), 1);
        assert_eq!(c.eval(ms(10)), 1, "left-continuous at breakpoint");
        assert_eq!(c.eval(ms(10) + TimeNs::from_ns(1)), 2);
        assert_eq!(c.eval(ms(20)), 2);
        assert_eq!(c.eval(ms(21)), 5);
        assert_eq!(c.eval(ms(1000)), 5, "no extension: saturates");
    }

    #[test]
    fn staircase_periodic_extension() {
        let c = StaircaseCurve::new(vec![(TimeNs::ZERO, 1)]).with_extension(ms(10), 2);
        assert_eq!(c.eval(ms(10)), 1);
        assert_eq!(c.eval(ms(10) + TimeNs::from_ns(1)), 3);
        assert_eq!(c.eval(ms(20)), 3);
        assert_eq!(c.eval(ms(25)), 5);
        assert_eq!(c.long_run_rate(), Some(Rate::new(2, ms(10))));
        let jumps = c.jump_points(ms(35));
        assert_eq!(jumps, vec![TimeNs::ZERO, ms(10), ms(20), ms(30)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn staircase_rejects_unsorted_points() {
        let _ = StaircaseCurve::new(vec![(ms(10), 1), (ms(5), 2)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn staircase_rejects_decreasing_values() {
        let _ = StaircaseCurve::new(vec![(ms(5), 3), (ms(10), 2)]);
    }

    #[test]
    fn min_max_sum_combinators() {
        let a = StaircaseCurve::new(vec![(TimeNs::ZERO, 2)]).with_extension(ms(10), 1);
        let b = StaircaseCurve::new(vec![(TimeNs::ZERO, 1)]).with_extension(ms(5), 1);
        let t = ms(17);
        let (va, vb) = (a.eval(t), b.eval(t));
        assert_eq!(MinCurve(&a, &b).eval(t), va.min(vb));
        assert_eq!(MaxCurve(&a, &b).eval(t), va.max(vb));
        assert_eq!(SumCurve(&a, &b).eval(t), va + vb);
        // Rates: min = 1/10ms, max = 1/5ms, sum = 3/10ms.
        assert_eq!(MinCurve(&a, &b).long_run_rate(), Some(Rate::new(1, ms(10))));
        assert_eq!(MaxCurve(&a, &b).long_run_rate(), Some(Rate::new(1, ms(5))));
        assert_eq!(SumCurve(&a, &b).long_run_rate(), Some(Rate::new(3, ms(10))));
    }

    #[test]
    fn delay_curve_shifts_right() {
        let a = StaircaseCurve::new(vec![(TimeNs::ZERO, 1)]).with_extension(ms(10), 1);
        let d = DelayCurve::new(&a, ms(7));
        assert_eq!(d.eval(ms(7)), 0);
        assert_eq!(d.eval(ms(7) + TimeNs::from_ns(1)), 1);
        assert_eq!(d.eval(ms(17) + TimeNs::from_ns(1)), 2);
        let jumps = d.jump_points(ms(30));
        assert_eq!(jumps, vec![ms(7), ms(17), ms(27)]);
    }

    #[test]
    fn scale_curve_multiplies_counts() {
        let a = StaircaseCurve::new(vec![(TimeNs::ZERO, 1)]).with_extension(ms(10), 1);
        let s = ScaleCurve::new(&a, 4);
        assert_eq!(s.eval(ms(25)), 3 * 4);
        assert_eq!(s.long_run_rate(), Some(Rate::new(4, ms(10))));
    }

    #[test]
    fn rate_ordering_is_exact() {
        let a = Rate::new(1, ms(30));
        let b = Rate::new(3, ms(90));
        let c = Rate::new(1, ms(29));
        assert_eq!(a, b);
        assert!(c > a);
        assert!(Rate::zero() < a);
    }
}
