//! # rtft-rtc — real-time calculus for the fault-tolerance framework
//!
//! The analytic substrate of the `rtft` reproduction of *"An Efficient Real
//! Time Fault Detection and Tolerance Framework Validated on the Intel SCC
//! Processor"* (Rai et al., DAC 2014).
//!
//! The paper's framework requires **no runtime timekeeping**: every
//! capacity and threshold its replicator/selector channels use is derived
//! *offline* from arrival-curve models of the application interfaces. This
//! crate provides:
//!
//! * [`TimeNs`] — exact integer-nanosecond time arithmetic;
//! * [`Curve`], [`StaircaseCurve`], [`PjdModel`] and combinators — arrival
//!   curves and the ⟨period, jitter, delay⟩ event model of the paper's
//!   Table 1;
//! * [`sup_difference`] / [`first_delta_reaching`] — exact sup/inf searches
//!   over staircase differences;
//! * [`sizing`] — FIFO capacities, initial fills and the divergence
//!   threshold `D` (paper eq. (3)–(5));
//! * [`detection`] — worst-case fault-detection latency bounds (paper
//!   eq. (6)–(8)).
//!
//! # Example: sizing the paper's MJPEG decoder duplication
//!
//! ```
//! use rtft_rtc::{sizing::{DuplicationModel, SizingReport}, PjdModel, TimeNs};
//!
//! let model = DuplicationModel::symmetric(
//!     PjdModel::from_ms(30.0, 2.0, 0.0),   // producer: ~30 fps encoded frames
//!     PjdModel::from_ms(30.0, 2.0, 0.0),   // consumer: display at ~30 fps
//!     [
//!         PjdModel::from_ms(30.0, 5.0, 0.0),   // replica 1 (tight jitter)
//!         PjdModel::from_ms(30.0, 30.0, 0.0),  // replica 2 (design diversity)
//!     ],
//! );
//! let report = SizingReport::analyze(&model)?;
//! assert_eq!(report.replicator_capacity, [2, 3]);    // |R₁|, |R₂| (Table 2)
//! assert_eq!(report.selector_capacity, [4, 6]);      // |S₁|, |S₂|
//! assert_eq!(report.selector_threshold, 4);          // D (eq. (5))
//! assert_eq!(report.selector_detection_bound, TimeNs::from_ms(240));
//! # Ok::<(), rtft_rtc::CurveAnalysisError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod curve;
pub mod detection;
pub mod minplus;
mod pjd;
pub mod sizing;
mod time;

pub use analysis::{
    default_horizon, first_delta_reaching, sup_difference, CurveAnalysisError, Supremum,
};
pub use detection::{DetectionBounds, HeteroBounds};

pub use curve::{
    Curve, DelayCurve, MaxCurve, MinCurve, Rate, ScaleCurve, StaircaseCurve, SumCurve, ZeroCurve,
};
pub use pjd::{PjdLower, PjdModel, PjdUpper};
pub use time::TimeNs;
