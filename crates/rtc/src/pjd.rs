//! The ⟨period, jitter, delay⟩ (PJD) event model.
//!
//! The paper characterises every interface of the process networks with a
//! `<period, jitter, delay>` tuple (Table 1), the standard event model of
//! SymTA-S-style compositional analysis:
//!
//! * events occur nominally every `period`,
//! * each event may be displaced by up to `jitter` (so the *n*-th event
//!   occurs somewhere in `[n·period, n·period + jitter]`),
//! * `delay` is a constant interface latency — it shifts every event by the
//!   same amount, so it does **not** change the arrival curves (the window
//!   bounds are placement-invariant) but does contribute to end-to-end
//!   latency accounting.
//!
//! The induced arrival curves are the classical staircases
//!
//! ```text
//! α^u(Δ) = ⌈(Δ + J) / P⌉            (optionally capped by ⌈Δ / d_min⌉)
//! α^l(Δ) = max(0, ⌊(Δ − J) / P⌋)
//! ```
//!
//! for `Δ > 0`, and `α(0) = 0`.

use crate::curve::{Curve, Rate};
use crate::time::TimeNs;

/// A ⟨period, jitter, delay⟩ event model for one stream interface.
///
/// # Examples
///
/// ```
/// use rtft_rtc::{Curve, PjdModel, TimeNs};
///
/// // The MJPEG producer: 30 ms period, 2 ms jitter (paper Table 1).
/// let producer = PjdModel::new(TimeNs::from_ms(30), TimeNs::from_ms(2), TimeNs::ZERO);
/// let upper = producer.upper();
/// let lower = producer.lower();
/// // In a 30 ms window: at most 2 frames (jitter can pull one in),
/// // at least 0 (jitter can push one out).
/// assert_eq!(upper.eval(TimeNs::from_ms(30)), 2);
/// assert_eq!(lower.eval(TimeNs::from_ms(30)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PjdModel {
    /// Nominal event period `P`.
    pub period: TimeNs,
    /// Maximum displacement `J` of any event from its nominal time.
    pub jitter: TimeNs,
    /// Constant interface latency (does not affect the curves).
    pub delay: TimeNs,
}

impl PjdModel {
    /// Creates a PJD model.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: TimeNs, jitter: TimeNs, delay: TimeNs) -> Self {
        assert!(period > TimeNs::ZERO, "PJD period must be positive");
        PjdModel {
            period,
            jitter,
            delay,
        }
    }

    /// Convenience constructor from fractional milliseconds, matching the
    /// paper's `<p, j, d>` tuples (e.g. `PjdModel::from_ms(30.0, 2.0, 30.0)`).
    ///
    /// # Panics
    ///
    /// Panics if `period_ms` rounds to zero nanoseconds.
    pub fn from_ms(period_ms: f64, jitter_ms: f64, delay_ms: f64) -> Self {
        Self::new(
            TimeNs::from_ms_f64(period_ms),
            TimeNs::from_ms_f64(jitter_ms),
            TimeNs::from_ms_f64(delay_ms),
        )
    }

    /// Strictly periodic model (zero jitter, zero delay).
    pub fn periodic(period: TimeNs) -> Self {
        Self::new(period, TimeNs::ZERO, TimeNs::ZERO)
    }

    /// The upper arrival curve `α^u` induced by this model.
    pub fn upper(&self) -> PjdUpper {
        PjdUpper {
            period: self.period,
            jitter: self.jitter,
            min_distance: None,
        }
    }

    /// The upper arrival curve, additionally capped by a minimum
    /// inter-event distance `d_min` (`α^u(Δ) ≤ ⌈Δ / d_min⌉`).
    ///
    /// # Panics
    ///
    /// Panics if `min_distance` is zero.
    pub fn upper_with_min_distance(&self, min_distance: TimeNs) -> PjdUpper {
        assert!(
            min_distance > TimeNs::ZERO,
            "minimum distance must be positive"
        );
        PjdUpper {
            period: self.period,
            jitter: self.jitter,
            min_distance: Some(min_distance),
        }
    }

    /// The lower arrival curve `α^l` induced by this model.
    pub fn lower(&self) -> PjdLower {
        PjdLower {
            period: self.period,
            jitter: self.jitter,
        }
    }

    /// Long-run rate `1 / period`.
    pub fn rate(&self) -> Rate {
        Rate::new(1, self.period)
    }

    /// Returns a copy with different jitter — the paper expresses the design
    /// diversity between replicas purely through differing jitter values.
    pub fn with_jitter(&self, jitter: TimeNs) -> Self {
        PjdModel { jitter, ..*self }
    }

    /// Returns a copy with a different constant delay.
    pub fn with_delay(&self, delay: TimeNs) -> Self {
        PjdModel { delay, ..*self }
    }
}

impl std::fmt::Display for PjdModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.period, self.jitter, self.delay)
    }
}

/// Upper arrival curve of a PJD stream: `α^u(Δ) = ⌈(Δ + J) / P⌉` for
/// `Δ > 0`, optionally capped by `⌈Δ / d_min⌉`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PjdUpper {
    period: TimeNs,
    jitter: TimeNs,
    min_distance: Option<TimeNs>,
}

impl Curve for PjdUpper {
    fn eval(&self, delta: TimeNs) -> u64 {
        if delta == TimeNs::ZERO {
            return 0;
        }
        let jitter_bound = (delta + self.jitter).div_ceil(self.period);
        match self.min_distance {
            Some(d) => jitter_bound.min(delta.div_ceil(d)),
            None => jitter_bound,
        }
    }

    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        // ⌈(Δ+J)/P⌉ increases just after Δ = k·P − J for k ≥ 1 (and has its
        // first positive value immediately after Δ = 0).
        let mut out = vec![TimeNs::ZERO];
        let mut k: u64 = 1;
        loop {
            let b = self.period * k;
            if b <= self.jitter {
                k += 1;
                continue;
            }
            let b = b - self.jitter;
            if b > horizon {
                break;
            }
            out.push(b);
            k += 1;
        }
        if let Some(d) = self.min_distance {
            let mut b = d;
            while b <= horizon {
                out.push(b);
                b += d;
            }
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    fn long_run_rate(&self) -> Option<Rate> {
        Some(Rate::new(1, self.period))
    }

    fn transient(&self) -> TimeNs {
        self.jitter
    }
}

/// Lower arrival curve of a PJD stream: `α^l(Δ) = max(0, ⌊(Δ − J) / P⌋)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PjdLower {
    period: TimeNs,
    jitter: TimeNs,
}

impl Curve for PjdLower {
    fn eval(&self, delta: TimeNs) -> u64 {
        match delta.checked_sub(self.jitter) {
            Some(d) => d.div_floor(self.period),
            None => 0,
        }
    }

    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        // ⌊(Δ−J)/P⌋ reaches k exactly at Δ = k·P + J.
        let mut out = Vec::new();
        let mut k: u64 = 1;
        loop {
            let b = self.period * k + self.jitter;
            if b > horizon {
                break;
            }
            out.push(b);
            k += 1;
        }
        out
    }

    fn long_run_rate(&self) -> Option<Rate> {
        Some(Rate::new(1, self.period))
    }

    fn transient(&self) -> TimeNs {
        self.jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    fn ns1() -> TimeNs {
        TimeNs::from_ns(1)
    }

    #[test]
    fn strictly_periodic_curves() {
        let m = PjdModel::periodic(ms(30));
        let (u, l) = (m.upper(), m.lower());
        assert_eq!(u.eval(TimeNs::ZERO), 0);
        assert_eq!(u.eval(ns1()), 1);
        assert_eq!(u.eval(ms(30)), 1);
        assert_eq!(u.eval(ms(30) + ns1()), 2);
        assert_eq!(l.eval(ms(30) - ns1()), 0);
        assert_eq!(l.eval(ms(30)), 1);
        assert_eq!(l.eval(ms(90)), 3);
    }

    #[test]
    fn jitter_widens_the_band() {
        // MJPEG replica 2: ⟨30, 30⟩ per the reconstructed Table 1.
        let m = PjdModel::new(ms(30), ms(30), TimeNs::ZERO);
        let (u, l) = (m.upper(), m.lower());
        // A tiny window can catch two displaced events.
        assert_eq!(u.eval(ns1()), 2);
        assert_eq!(u.eval(ms(30) + ns1()), 3);
        // A 59.999ms window can contain zero events.
        assert_eq!(l.eval(ms(60) - ns1()), 0);
        assert_eq!(l.eval(ms(60)), 1);
    }

    #[test]
    fn min_distance_caps_the_upper_curve() {
        let m = PjdModel::new(ms(30), ms(30), TimeNs::ZERO);
        let u = m.upper_with_min_distance(ms(10));
        // Without the cap a 1ns window would allow 2 events.
        assert_eq!(u.eval(ns1()), 1);
        assert_eq!(u.eval(ms(10) + ns1()), 2);
    }

    #[test]
    fn upper_jump_points_are_exact() {
        let m = PjdModel::new(ms(30), ms(2), TimeNs::ZERO);
        let u = m.upper();
        // Jumps just after 0, 28, 58, 88 ms.
        assert_eq!(
            u.jump_points(ms(90)),
            vec![TimeNs::ZERO, ms(28), ms(58), ms(88)]
        );
        for b in u.jump_points(ms(90)).iter().skip(1) {
            assert_eq!(
                u.eval(*b) + 1,
                u.eval(*b + ns1()),
                "value must jump by one just after breakpoint {b}"
            );
        }
    }

    #[test]
    fn lower_jump_points_are_exact() {
        let m = PjdModel::new(ms(30), ms(5), TimeNs::ZERO);
        let l = m.lower();
        assert_eq!(l.jump_points(ms(100)), vec![ms(35), ms(65), ms(95)]);
        for b in l.jump_points(ms(100)) {
            assert_eq!(
                l.eval(b - ns1()) + 1,
                l.eval(b),
                "lower reaches next step at {b}"
            );
        }
    }

    #[test]
    fn jitter_larger_than_period_still_consistent() {
        // ADPCM replica 2: jitter ≈ 2.5 periods.
        let m = PjdModel::from_ms(6.3, 16.0, 0.0);
        let (u, l) = (m.upper(), m.lower());
        // Upper at 1ns: ⌈16.000001/6.3⌉ = 3.
        assert_eq!(u.eval(ns1()), 3);
        assert_eq!(l.eval(TimeNs::from_ms_f64(22.3)), 1);
        for delta in [1u64, 1_000, 6_300_000, 22_300_000, 100_000_000] {
            let d = TimeNs::from_ns(delta);
            assert!(u.eval(d) >= l.eval(d), "upper dominates lower at {d}");
        }
    }

    #[test]
    fn display_format() {
        let m = PjdModel::from_ms(30.0, 2.0, 30.0);
        assert_eq!(format!("{m}"), "⟨30ms, 2ms, 30ms⟩");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = PjdModel::new(TimeNs::ZERO, TimeNs::ZERO, TimeNs::ZERO);
    }
}
