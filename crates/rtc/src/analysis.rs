//! Exact sup/inf searches over staircase-curve differences.
//!
//! Every quantity in the paper's §3.4 is either a supremum of a difference
//! of two curves (FIFO capacities, eq. (3)–(4); divergence threshold,
//! eq. (5)) or an infimum of the window length at which a difference first
//! reaches a target (detection latency, eq. (6)–(8)).
//!
//! Because all curves in this crate are integer staircases over integer
//! nanoseconds, the difference `f(Δ) − g(Δ)` changes value only at the jump
//! points of `f` or `g`. Probing each jump point `b` and its successor
//! `b + 1` (curves are left-continuous) therefore explores *every* value
//! the difference ever takes up to the horizon — the searches are exact,
//! not sampled.

use crate::curve::Curve;
use crate::time::TimeNs;
use std::fmt;

/// Error from a curve analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveAnalysisError {
    /// The supremum does not exist: the upper curve grows strictly faster
    /// than the lower curve, so the difference diverges. In system terms,
    /// the producer is faster than the consumer and no finite FIFO suffices.
    Unbounded {
        /// Long-run rate of the upper curve (tokens per second).
        upper_rate: f64,
        /// Long-run rate of the lower curve (tokens per second).
        lower_rate: f64,
    },
    /// A search horizon of zero was supplied.
    EmptyHorizon,
}

impl fmt::Display for CurveAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveAnalysisError::Unbounded { upper_rate, lower_rate } => write!(
                f,
                "supremum is unbounded: upper rate {upper_rate:.3}/s exceeds lower rate {lower_rate:.3}/s"
            ),
            CurveAnalysisError::EmptyHorizon => write!(f, "search horizon must be positive"),
        }
    }
}

impl std::error::Error for CurveAnalysisError {}

/// Result of a supremum search: the value and a witness window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supremum {
    /// `sup_Δ { f(Δ) − g(Δ) }` (clamped at zero from below: arrival-curve
    /// differences of interest are counts of outstanding tokens).
    pub value: u64,
    /// A window length at which the supremum is attained.
    pub witness: TimeNs,
}

/// Enumerates all probe points for a pair of curves: `0`, `1`, each jump
/// point and its successor, and the horizon.
fn probe_points(f: &dyn Curve, g: &dyn Curve, horizon: TimeNs) -> Vec<TimeNs> {
    let mut pts = Vec::with_capacity(64);
    pts.push(TimeNs::ZERO);
    pts.push(TimeNs::from_ns(1));
    for b in f
        .jump_points(horizon)
        .into_iter()
        .chain(g.jump_points(horizon))
    {
        pts.push(b);
        pts.push(b.saturating_add(TimeNs::from_ns(1)));
    }
    pts.push(horizon);
    pts.retain(|p| *p <= horizon);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Computes `sup_{0 ≤ Δ ≤ horizon} { upper(Δ) − lower(Δ) }` exactly.
///
/// This is the workhorse behind eq. (3) (FIFO capacity), eq. (4) (initial
/// fill) and eq. (5) (divergence threshold).
///
/// # Errors
///
/// * [`CurveAnalysisError::Unbounded`] if `upper` has a strictly greater
///   long-run rate than `lower` — the difference diverges and no finite
///   bound exists.
/// * [`CurveAnalysisError::EmptyHorizon`] if `horizon` is zero.
///
/// # Examples
///
/// ```
/// use rtft_rtc::{sup_difference, PjdModel, TimeNs};
///
/// // MJPEG: producer ⟨30, 2⟩ vs replica-1 consumption ⟨30, 5⟩ gives the
/// // paper's |R₁| = 2 (Table 2).
/// let producer = PjdModel::from_ms(30.0, 2.0, 0.0);
/// let replica1 = PjdModel::from_ms(30.0, 5.0, 0.0);
/// let sup = sup_difference(
///     &producer.upper(),
///     &replica1.lower(),
///     TimeNs::from_secs(2),
/// )?;
/// assert_eq!(sup.value, 2);
/// # Ok::<(), rtft_rtc::CurveAnalysisError>(())
/// ```
pub fn sup_difference(
    upper: &dyn Curve,
    lower: &dyn Curve,
    horizon: TimeNs,
) -> Result<Supremum, CurveAnalysisError> {
    if horizon == TimeNs::ZERO {
        return Err(CurveAnalysisError::EmptyHorizon);
    }
    if let (Some(ru), Some(rl)) = (upper.long_run_rate(), lower.long_run_rate()) {
        if ru > rl {
            return Err(CurveAnalysisError::Unbounded {
                upper_rate: ru.tokens_per_sec(),
                lower_rate: rl.tokens_per_sec(),
            });
        }
    } else if upper.long_run_rate().is_some() && lower.long_run_rate().is_none() {
        return Err(CurveAnalysisError::Unbounded {
            upper_rate: upper
                .long_run_rate()
                .expect("checked above")
                .tokens_per_sec(),
            lower_rate: 0.0,
        });
    }

    let mut best = Supremum {
        value: 0,
        witness: TimeNs::ZERO,
    };
    for p in probe_points(upper, lower, horizon) {
        let diff = upper.eval(p).saturating_sub(lower.eval(p));
        if diff > best.value {
            best = Supremum {
                value: diff,
                witness: p,
            };
        }
    }
    Ok(best)
}

/// Finds `inf { Δ ≤ horizon | f(Δ) − g(Δ) ≥ target }` exactly, in integer
/// nanoseconds. Returns `None` if the condition never holds within the
/// horizon.
///
/// This implements the infima of eq. (6)–(8): `f` is the lower curve of the
/// healthy replica, `g` the (post-fault) upper curve of the faulty one, and
/// `target = 2D − 1`.
///
/// # Examples
///
/// ```
/// use rtft_rtc::{first_delta_reaching, PjdModel, ZeroCurve, TimeNs};
///
/// // Fail-stop: how long until a ⟨30, 5⟩ replica has produced 7 tokens?
/// let healthy = PjdModel::from_ms(30.0, 5.0, 0.0);
/// let t = first_delta_reaching(&healthy.lower(), &ZeroCurve, 7, TimeNs::from_secs(2));
/// assert_eq!(t, Some(TimeNs::from_ms(7 * 30 + 5)));
/// ```
pub fn first_delta_reaching(
    f: &dyn Curve,
    g: &dyn Curve,
    target: u64,
    horizon: TimeNs,
) -> Option<TimeNs> {
    if target == 0 {
        return Some(TimeNs::ZERO);
    }
    let reaches = |p: TimeNs| f.eval(p).saturating_sub(g.eval(p)) >= target;
    // The first probe point at which the condition holds is the true
    // infimum: each probe is either a jump point (difference attained
    // exactly there) or a successor, and the difference is constant
    // between probe points.
    probe_points(f, g, horizon)
        .into_iter()
        .find(|&p| reaches(p))
}

/// A conservative default search horizon for a pair of curves.
///
/// For equal long-run periods the difference of two PJD staircases is
/// periodic (period `P`) once `Δ` exceeds the jitter transient, so any
/// horizon covering a few periods beyond the transient is exact. For
/// unequal periods the difference has a strictly negative drift and its
/// supremum lies in the transient prefix. We use `64 ×` the sum of the
/// effective periods, which covers both regimes for every model in this
/// repository with a wide margin (documented in `DESIGN.md` §5.4); pass an
/// explicit horizon to [`sup_difference`] for exotic curves.
pub fn default_horizon(a: &dyn Curve, b: &dyn Curve) -> TimeNs {
    let eff = |c: &dyn Curve| -> TimeNs {
        match c.long_run_rate() {
            Some(r) if r.tokens() > 0 => TimeNs::from_ns((r.per().as_ns() / r.tokens()).max(1)),
            _ => TimeNs::from_ms(1),
        }
    };
    a.transient()
        .saturating_add(b.transient())
        .saturating_add((eff(a) + eff(b)) * 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{StaircaseCurve, ZeroCurve};
    use crate::pjd::PjdModel;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn sup_of_equal_curves_is_transient_only() {
        let m = PjdModel::periodic(ms(10));
        let sup = sup_difference(&m.upper(), &m.lower(), ms(500)).expect("bounded");
        // ⌈Δ/P⌉ − ⌊Δ/P⌋ ≤ 1.
        assert_eq!(sup.value, 1);
    }

    #[test]
    fn sup_reproduces_mjpeg_replicator_capacities() {
        let producer = PjdModel::from_ms(30.0, 2.0, 0.0);
        let r1 = PjdModel::from_ms(30.0, 5.0, 0.0);
        let r2 = PjdModel::from_ms(30.0, 30.0, 0.0);
        let h = ms(2_000);
        assert_eq!(
            sup_difference(&producer.upper(), &r1.lower(), h)
                .unwrap()
                .value,
            2
        );
        assert_eq!(
            sup_difference(&producer.upper(), &r2.lower(), h)
                .unwrap()
                .value,
            3
        );
    }

    #[test]
    fn sup_reproduces_adpcm_replicator_capacities() {
        let producer = PjdModel::from_ms(6.3, 1.0, 0.0);
        let r1 = PjdModel::from_ms(6.3, 1.0, 0.0);
        let r2 = PjdModel::from_ms(6.3, 16.0, 0.0);
        let h = ms(2_000);
        assert_eq!(
            sup_difference(&producer.upper(), &r1.lower(), h)
                .unwrap()
                .value,
            2
        );
        assert_eq!(
            sup_difference(&producer.upper(), &r2.lower(), h)
                .unwrap()
                .value,
            4
        );
    }

    #[test]
    fn unbounded_when_upper_is_faster() {
        let fast = PjdModel::periodic(ms(10));
        let slow = PjdModel::periodic(ms(20));
        let err = sup_difference(&fast.upper(), &slow.lower(), ms(1_000)).unwrap_err();
        assert!(matches!(err, CurveAnalysisError::Unbounded { .. }));
        assert!(err.to_string().contains("unbounded"));
    }

    #[test]
    fn unbounded_when_lower_is_eventually_constant() {
        let producer = PjdModel::periodic(ms(10));
        let stalled = StaircaseCurve::new(vec![(TimeNs::ZERO, 3)]);
        let err = sup_difference(&producer.upper(), &stalled, ms(1_000)).unwrap_err();
        assert!(matches!(err, CurveAnalysisError::Unbounded { .. }));
    }

    #[test]
    fn bounded_when_upper_is_eventually_constant() {
        let burst = StaircaseCurve::new(vec![(TimeNs::ZERO, 5)]);
        let drain = PjdModel::periodic(ms(10));
        let sup = sup_difference(&burst, &drain.lower(), ms(1_000)).expect("bounded");
        assert_eq!(sup.value, 5);
        assert!(sup.witness < ms(10));
    }

    #[test]
    fn zero_horizon_is_an_error() {
        let m = PjdModel::periodic(ms(10));
        assert_eq!(
            sup_difference(&m.upper(), &m.lower(), TimeNs::ZERO).unwrap_err(),
            CurveAnalysisError::EmptyHorizon
        );
    }

    #[test]
    fn first_delta_fail_stop_closed_form() {
        // Closed form for PJD lower vs zero: Δ = n·P + J.
        for (p, j, n) in [(30u64, 5u64, 7u64), (30, 30, 7), (10, 0, 3)] {
            let m = PjdModel::new(ms(p), ms(j), TimeNs::ZERO);
            let t = first_delta_reaching(&m.lower(), &ZeroCurve, n, ms(10_000));
            assert_eq!(t, Some(ms(n * p + j)), "P={p} J={j} n={n}");
        }
    }

    #[test]
    fn first_delta_against_slow_faulty_replica() {
        // Healthy ⟨30, 5⟩ vs a faulty replica still limping at ⟨90, 0⟩:
        // difference grows by 2 per 90ms epoch; needs longer than fail-stop.
        let healthy = PjdModel::from_ms(30.0, 5.0, 0.0);
        let faulty = PjdModel::periodic(ms(90));
        let fail_stop = first_delta_reaching(&healthy.lower(), &ZeroCurve, 7, ms(100_000)).unwrap();
        let limping =
            first_delta_reaching(&healthy.lower(), &faulty.upper(), 7, ms(100_000)).unwrap();
        assert!(limping > fail_stop, "{limping} vs {fail_stop}");
    }

    #[test]
    fn first_delta_none_when_unreachable() {
        let m = PjdModel::periodic(ms(30));
        // Same rate on both sides: difference never reaches 5.
        assert_eq!(
            first_delta_reaching(&m.lower(), &m.upper(), 5, ms(10_000)),
            None
        );
    }

    #[test]
    fn first_delta_target_zero_is_immediate() {
        let m = PjdModel::periodic(ms(30));
        assert_eq!(
            first_delta_reaching(&m.lower(), &ZeroCurve, 0, ms(100)),
            Some(TimeNs::ZERO)
        );
    }

    #[test]
    fn default_horizon_covers_many_periods() {
        let a = PjdModel::periodic(ms(30));
        let b = PjdModel::from_ms(6.3, 16.0, 0.0);
        let h = default_horizon(&a.upper(), &b.lower());
        assert!(h >= ms(30) * 64);
    }
}
