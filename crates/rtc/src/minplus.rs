//! Min-plus algebra: convolution, deconvolution, service curves and the
//! classical delay/backlog bounds.
//!
//! The paper's §3.4 uses only sup-of-difference and first-crossing
//! searches, but the underlying theory (Chakraborty et al., RTSS 2006 —
//! the paper's \[1\]) is the (min,+) dioid of real-time calculus. This
//! module provides the standard operators over this crate's integer
//! staircases so the library is usable beyond the paper's exact
//! experiments:
//!
//! * `(f ⊗ g)(Δ) = inf_{0 ≤ λ ≤ Δ} f(λ) + g(Δ − λ)` — min-plus convolution;
//! * `(f ⊘ g)(Δ) = sup_{λ ≥ 0} f(Δ + λ) − g(λ)` — min-plus deconvolution
//!   (horizon-bounded);
//! * [`RateLatency`] service curves `β_{R,T}`;
//! * [`delay_bound`] — the horizontal deviation `h(α, β)`, the classical
//!   worst-case delay of a flow `α` through a server `β`;
//! * [`backlog_bound`] — the vertical deviation `v(α, β)` (which is the
//!   same computation as the paper's eq. (3)).
//!
//! All operators are exact over the curves' breakpoints, like the rest of
//! the crate.

use crate::analysis::{sup_difference, CurveAnalysisError};
use crate::curve::{Curve, Rate};
use crate::time::TimeNs;

/// Candidate split points for an exact staircase inf/sup search in
/// `[0, delta]`: every jump point of `f`, every `delta − jump(g)`, plus
/// the interval ends and their ±1 ns neighbours.
fn split_candidates(f: &dyn Curve, g: &dyn Curve, delta: TimeNs) -> Vec<TimeNs> {
    let mut pts = vec![TimeNs::ZERO, delta];
    for b in f.jump_points(delta) {
        pts.push(b);
        pts.push(b.saturating_add(TimeNs::from_ns(1)));
    }
    for b in g.jump_points(delta) {
        if b <= delta {
            pts.push(delta - b);
            pts.push((delta - b).saturating_sub(TimeNs::from_ns(1)));
        }
    }
    pts.retain(|p| *p <= delta);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Min-plus convolution `(f ⊗ g)(Δ)`, evaluated pointwise.
///
/// For arrival curves, `α ⊗ β` is the output envelope of a flow `α`
/// through a server `β`; for two upper curves it tightens both.
///
/// # Examples
///
/// ```
/// use rtft_rtc::minplus::convolve_at;
/// use rtft_rtc::{Curve, PjdModel, TimeNs};
///
/// let a = PjdModel::periodic(TimeNs::from_ms(10));
/// // Convolving a curve with itself keeps it sub-additive-consistent:
/// let v = convolve_at(&a.upper(), &a.upper(), TimeNs::from_ms(25));
/// assert!(v <= a.upper().eval(TimeNs::from_ms(25)));
/// ```
pub fn convolve_at(f: &dyn Curve, g: &dyn Curve, delta: TimeNs) -> u64 {
    let mut best = u64::MAX;
    for lambda in split_candidates(f, g, delta) {
        best = best.min(f.eval(lambda) + g.eval(delta - lambda));
    }
    best
}

/// Min-plus deconvolution `(f ⊘ g)(Δ)`, horizon-bounded.
///
/// `α ⊘ β` is the tightest upper arrival curve of a flow `α` *after*
/// being served by `β` — how burstiness grows through a server.
pub fn deconvolve_at(f: &dyn Curve, g: &dyn Curve, delta: TimeNs, horizon: TimeNs) -> u64 {
    let mut pts = vec![TimeNs::ZERO, horizon];
    for b in f.jump_points(horizon.saturating_add(delta)) {
        let b = b.saturating_sub(delta);
        pts.push(b);
        pts.push(b.saturating_add(TimeNs::from_ns(1)));
    }
    for b in g.jump_points(horizon) {
        pts.push(b);
        pts.push(b.saturating_add(TimeNs::from_ns(1)));
    }
    pts.retain(|p| *p <= horizon);
    pts.sort_unstable();
    pts.dedup();
    let mut best = 0u64;
    for lambda in pts {
        best = best.max(f.eval(delta + lambda).saturating_sub(g.eval(lambda)));
    }
    best
}

/// A rate-latency service curve `β_{R,T}(Δ) = R · (Δ − T)⁺` over token
/// counts: the canonical model of a server that, after an initial latency
/// `T`, guarantees `rate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLatency {
    rate: Rate,
    latency: TimeNs,
}

impl RateLatency {
    /// A server guaranteeing `rate` after `latency`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn new(rate: Rate, latency: TimeNs) -> Self {
        assert!(rate.tokens() > 0, "service rate must be positive");
        RateLatency { rate, latency }
    }

    /// The guaranteed long-run rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// The initial service latency `T`.
    pub fn latency(&self) -> TimeNs {
        self.latency
    }
}

impl Curve for RateLatency {
    fn eval(&self, delta: TimeNs) -> u64 {
        match delta.checked_sub(self.latency) {
            Some(d) => {
                (d.as_ns() as u128 * self.rate.tokens() as u128 / self.rate.per().as_ns() as u128)
                    as u64
            }
            None => 0,
        }
    }

    fn jump_points(&self, horizon: TimeNs) -> Vec<TimeNs> {
        // Completes token k at T + ceil(k · per / tokens).
        let mut out = Vec::new();
        let mut k: u64 = 1;
        loop {
            let dt = (k as u128 * self.rate.per().as_ns() as u128)
                .div_ceil(self.rate.tokens() as u128) as u64;
            let b = self.latency + TimeNs::from_ns(dt);
            if b > horizon {
                break;
            }
            out.push(b);
            k += 1;
        }
        out
    }

    fn long_run_rate(&self) -> Option<Rate> {
        Some(self.rate)
    }

    fn transient(&self) -> TimeNs {
        self.latency
    }
}

/// Worst-case backlog of a flow `alpha` through a server `beta` — the
/// vertical deviation `v(α, β) = sup_Δ { α(Δ) − β(Δ) }` (identical in
/// form to the paper's FIFO-capacity eq. (3)).
///
/// # Errors
///
/// [`CurveAnalysisError::Unbounded`] if the arrival rate exceeds the
/// service rate.
pub fn backlog_bound(
    alpha: &dyn Curve,
    beta: &dyn Curve,
    horizon: TimeNs,
) -> Result<u64, CurveAnalysisError> {
    Ok(sup_difference(alpha, beta, horizon)?.value)
}

/// Worst-case delay of a flow `alpha` through a server `beta` — the
/// horizontal deviation `h(α, β) = sup_Δ inf { d ≥ 0 | α(Δ) ≤ β(Δ + d) }`.
///
/// Returns `None` if the delay is unbounded within the horizon (service
/// rate below arrival rate, or horizon too short).
pub fn delay_bound(alpha: &dyn Curve, beta: &dyn Curve, horizon: TimeNs) -> Option<TimeNs> {
    if let (Some(ra), Some(rb)) = (alpha.long_run_rate(), beta.long_run_rate()) {
        if ra > rb {
            return None;
        }
    }
    // At each arrival-curve step, find when beta catches up.
    let mut worst = TimeNs::ZERO;
    let mut probes = vec![TimeNs::ZERO, TimeNs::from_ns(1)];
    for b in alpha.jump_points(horizon) {
        probes.push(b);
        probes.push(b.saturating_add(TimeNs::from_ns(1)));
    }
    let beta_steps = {
        let mut v = beta.jump_points(horizon.saturating_add(horizon));
        v.push(TimeNs::ZERO);
        v.sort_unstable();
        v.dedup();
        v
    };
    for delta in probes {
        let need = alpha.eval(delta);
        if need == 0 {
            continue;
        }
        // Earliest t ≥ delta with beta(t) ≥ need, scanned over beta's
        // steps (beta attains new values at its jump points).
        let mut t = None;
        for s in &beta_steps {
            if *s >= delta && beta.eval(*s) >= need {
                t = Some(*s);
                break;
            }
        }
        match t {
            Some(t) => worst = worst.max(t - delta),
            None => return None, // not served within horizon
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::StaircaseCurve;
    use crate::pjd::PjdModel;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn rate_latency_basics() {
        // 1 token per 10 ms after a 5 ms latency.
        let b = RateLatency::new(Rate::new(1, ms(10)), ms(5));
        assert_eq!(b.eval(ms(5)), 0);
        assert_eq!(b.eval(ms(15)), 1);
        assert_eq!(b.eval(ms(35)), 3);
        assert_eq!(b.transient(), ms(5));
        // Jump points land where whole tokens complete.
        assert_eq!(b.jump_points(ms(40)), vec![ms(15), ms(25), ms(35)]);
    }

    #[test]
    fn convolution_with_burst_is_min() {
        // f = immediate burst of 3; g = periodic 1/10ms.
        let f = StaircaseCurve::new(vec![(TimeNs::ZERO, 3)]);
        let g = PjdModel::periodic(ms(10)).upper();
        // (f ⊗ g)(25ms): split λ=0 → f(0)+g(25)=0+3=3; λ=25 → 3+0=3;
        // λ=5 → 3+g(20)=5 … min is 3.
        assert_eq!(convolve_at(&f, &g, ms(25)), 3);
        // Early window: limited by the burst's availability via g(0)=0.
        assert_eq!(convolve_at(&f, &g, TimeNs::ZERO), 0);
    }

    #[test]
    fn convolution_is_commutative_on_samples() {
        let a = PjdModel::from_ms(10.0, 3.0, 0.0).upper();
        let b = RateLatency::new(Rate::new(1, ms(7)), ms(2));
        for d in [0u64, 1, 5, 12, 30, 77] {
            let t = ms(d);
            assert_eq!(convolve_at(&a, &b, t), convolve_at(&b, &a, t), "Δ = {t}");
        }
    }

    #[test]
    fn deconvolution_grows_burstiness() {
        // A periodic flow through a slow-start server becomes burstier.
        let alpha = PjdModel::periodic(ms(10)).upper();
        let beta = RateLatency::new(Rate::new(1, ms(10)), ms(15));
        let horizon = ms(1_000);
        for d in [0u64, 5, 10, 25] {
            let out = deconvolve_at(&alpha, &beta, ms(d), horizon);
            assert!(
                out >= alpha.eval(ms(d)),
                "output envelope must dominate the input at Δ = {d} ms"
            );
        }
        // The latency converts to ~2 extra tokens of burst at Δ→0⁺.
        assert!(deconvolve_at(&alpha, &beta, ms(1), horizon) >= 2);
    }

    #[test]
    fn backlog_matches_fifo_capacity_equation() {
        // v(α, β) with β an exact-rate server equals the paper's |F|.
        let producer = PjdModel::from_ms(30.0, 2.0, 0.0);
        let consumer = PjdModel::from_ms(30.0, 30.0, 0.0);
        let via_minplus =
            backlog_bound(&producer.upper(), &consumer.lower(), ms(3_000)).expect("bounded");
        let via_sizing = crate::sizing::fifo_capacity(&producer, &consumer).expect("bounded");
        assert_eq!(via_minplus, via_sizing);
    }

    #[test]
    fn delay_bound_closed_form_periodic_through_rate_latency() {
        // Periodic 1/10ms through β with rate 1/10ms and latency T: the
        // worst-case delay is T plus one service quantum.
        let alpha = PjdModel::periodic(ms(10)).upper();
        for t in [0u64, 5, 20] {
            let beta = RateLatency::new(Rate::new(1, ms(10)), ms(t));
            let d = delay_bound(&alpha, &beta, ms(2_000)).expect("bounded");
            assert!(
                d >= ms(t) && d <= ms(t + 10),
                "latency {t} ms: delay bound {d} outside [T, T + P]"
            );
        }
    }

    #[test]
    fn delay_unbounded_when_underprovisioned() {
        let alpha = PjdModel::periodic(ms(10)).upper();
        let beta = RateLatency::new(Rate::new(1, ms(20)), TimeNs::ZERO);
        assert_eq!(delay_bound(&alpha, &beta, ms(2_000)), None);
    }

    #[test]
    fn delay_grows_with_jitter() {
        let beta = RateLatency::new(Rate::new(1, ms(10)), ms(5));
        let tight = PjdModel::from_ms(10.0, 0.0, 0.0).upper();
        let loose = PjdModel::from_ms(10.0, 25.0, 0.0).upper();
        let dt = delay_bound(&tight, &beta, ms(3_000)).expect("bounded");
        let dl = delay_bound(&loose, &beta, ms(3_000)).expect("bounded");
        assert!(dl > dt, "jitter must worsen the delay bound: {dl} vs {dt}");
    }

    #[test]
    fn backlog_unbounded_when_underprovisioned() {
        let alpha = PjdModel::periodic(ms(5)).upper();
        let beta = RateLatency::new(Rate::new(1, ms(10)), TimeNs::ZERO);
        assert!(backlog_bound(&alpha, &beta, ms(1_000)).is_err());
    }
}
