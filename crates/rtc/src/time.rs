//! Integer nanosecond time arithmetic.
//!
//! All real-time calculus in this crate works on an integer nanosecond
//! timeline. Using integers (rather than `f64`) keeps curve evaluation,
//! breakpoint enumeration and sup/inf searches exact, which matters because
//! the paper's guarantees (no false positives, eq. (5)) are stated over
//! exact token counts.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration (or instant on the virtual timeline) in integer nanoseconds.
///
/// `TimeNs` is deliberately a thin newtype over `u64`: one `TimeNs` can
/// represent about 584 years of simulated time, far beyond any experiment
/// horizon in this repository.
///
/// # Examples
///
/// ```
/// use rtft_rtc::TimeNs;
///
/// let frame_period = TimeNs::from_ms(30);
/// assert_eq!(frame_period.as_ns(), 30_000_000);
/// assert_eq!(frame_period * 2, TimeNs::from_ms(60));
/// assert_eq!(format!("{frame_period}"), "30ms");
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeNs(u64);

impl TimeNs {
    /// The zero duration.
    pub const ZERO: TimeNs = TimeNs(0);
    /// The largest representable duration; used as an "infinite" sentinel in
    /// searches that may not terminate (e.g. a lower curve that never reaches
    /// a target count).
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        TimeNs(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds (e.g. the ADPCM
    /// sample period of 6.3 ms). Rounds to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms_f64(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative"
        );
        TimeNs((ms * 1_000_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub const fn saturating_sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamped at [`TimeNs::MAX`].
    pub const fn saturating_add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_add(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: TimeNs) -> Option<TimeNs> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(TimeNs(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub const fn checked_sub(self, rhs: TimeNs) -> Option<TimeNs> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(TimeNs(v)),
            None => None,
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: TimeNs) -> TimeNs {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: TimeNs) -> TimeNs {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// `ceil(self / divisor)` as a token count; the workhorse of upper
    /// arrival-curve evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_ceil(self, divisor: TimeNs) -> u64 {
        assert!(divisor.0 != 0, "division by zero duration");
        self.0.div_ceil(divisor.0)
    }

    /// `floor(self / divisor)` as a token count.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_floor(self, divisor: TimeNs) -> u64 {
        assert!(divisor.0 != 0, "division by zero duration");
        self.0 / divisor.0
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns >= 1_000_000 && ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 && ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl SubAssign for TimeNs {
    fn sub_assign(&mut self, rhs: TimeNs) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeNs {
    type Output = TimeNs;
    fn mul(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 * rhs)
    }
}

impl Div<u64> for TimeNs {
    type Output = TimeNs;
    fn div(self, rhs: u64) -> TimeNs {
        TimeNs(self.0 / rhs)
    }
}

impl Rem for TimeNs {
    type Output = TimeNs;
    fn rem(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 % rhs.0)
    }
}

impl Sum for TimeNs {
    fn sum<I: Iterator<Item = TimeNs>>(iter: I) -> TimeNs {
        iter.fold(TimeNs::ZERO, |a, b| a + b)
    }
}

impl From<u64> for TimeNs {
    fn from(ns: u64) -> Self {
        TimeNs(ns)
    }
}

impl From<TimeNs> for u64 {
    fn from(t: TimeNs) -> u64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(TimeNs::from_ms(1), TimeNs::from_us(1_000));
        assert_eq!(TimeNs::from_secs(1), TimeNs::from_ms(1_000));
        assert_eq!(TimeNs::from_ms_f64(6.3), TimeNs::from_us(6_300));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(format!("{}", TimeNs::from_ms(30)), "30ms");
        assert_eq!(format!("{}", TimeNs::from_us(500)), "500us");
        assert_eq!(format!("{}", TimeNs::from_ns(17)), "17ns");
        assert_eq!(format!("{}", TimeNs::from_ms_f64(6.3)), "6.300ms");
        assert_eq!(format!("{}", TimeNs::from_secs(2)), "2s");
        assert_eq!(format!("{}", TimeNs::MAX), "∞");
    }

    #[test]
    fn div_ceil_and_floor() {
        let p = TimeNs::from_ms(30);
        assert_eq!(TimeNs::from_ms(60).div_ceil(p), 2);
        assert_eq!(TimeNs::from_ms(61).div_ceil(p), 3);
        assert_eq!(TimeNs::from_ms(61).div_floor(p), 2);
        assert_eq!(TimeNs::ZERO.div_ceil(p), 0);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            TimeNs::from_ms(1).saturating_sub(TimeNs::from_ms(2)),
            TimeNs::ZERO
        );
        assert_eq!(TimeNs::MAX.saturating_add(TimeNs::from_ns(1)), TimeNs::MAX);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_divisor_panics() {
        let _ = TimeNs::from_ms(1).div_ceil(TimeNs::ZERO);
    }
}
