//! Property-based tests for the real-time calculus core.

use proptest::prelude::*;
use rtft_rtc::{
    detection, first_delta_reaching, sizing, sup_difference, Curve, PjdModel, StaircaseCurve,
    TimeNs, ZeroCurve,
};

fn pjd_strategy() -> impl Strategy<Value = PjdModel> {
    // Periods 1–100 ms, jitter 0–3 periods, in 100 µs quanta.
    (1u64..=1_000, 0u64..=3_000).prop_map(|(p, j)| {
        PjdModel::new(
            TimeNs::from_us(p * 100),
            TimeNs::from_us(j * 100),
            TimeNs::ZERO,
        )
    })
}

proptest! {
    /// Curves are monotone and upper dominates lower at every probe point.
    #[test]
    fn pjd_curves_monotone_and_ordered(m in pjd_strategy(), deltas in prop::collection::vec(0u64..10_000_000_000, 1..20)) {
        let (u, l) = (m.upper(), m.lower());
        let mut ds: Vec<TimeNs> = deltas.into_iter().map(TimeNs::from_ns).collect();
        ds.sort_unstable();
        let mut prev_u = 0;
        let mut prev_l = 0;
        for d in ds {
            let (vu, vl) = (u.eval(d), l.eval(d));
            prop_assert!(vu >= prev_u, "upper curve must be non-decreasing");
            prop_assert!(vl >= prev_l, "lower curve must be non-decreasing");
            prop_assert!(vu >= vl, "upper must dominate lower");
            prev_u = vu;
            prev_l = vl;
        }
    }

    /// The upper curve is subadditive for zero-jitter (strictly periodic)
    /// models: α(a + b) ≤ α(a) + α(b).
    #[test]
    fn periodic_upper_is_subadditive(p in 1u64..=500, a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let m = PjdModel::periodic(TimeNs::from_us(p * 100));
        let u = m.upper();
        let (ta, tb) = (TimeNs::from_ns(a), TimeNs::from_ns(b));
        prop_assert!(u.eval(ta + tb) <= u.eval(ta) + u.eval(tb));
    }

    /// The lower curve is superadditive: α(a + b) ≥ α(a) + α(b).
    #[test]
    fn lower_is_superadditive(m in pjd_strategy(), a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let l = m.lower();
        let (ta, tb) = (TimeNs::from_ns(a), TimeNs::from_ns(b));
        prop_assert!(l.eval(ta + tb) >= l.eval(ta) + l.eval(tb));
    }

    /// Jump points really are the only places the curves change: between
    /// consecutive jump points the value is constant.
    #[test]
    fn jump_points_are_complete(m in pjd_strategy()) {
        let horizon = m.period * 12 + m.jitter;
        for curve in [&m.upper() as &dyn Curve, &m.lower() as &dyn Curve] {
            let mut jumps = curve.jump_points(horizon);
            jumps.push(horizon);
            jumps.sort_unstable();
            jumps.dedup();
            let mut prev = TimeNs::ZERO;
            for b in jumps {
                // The curve may change at a jump point (lower curves attain
                // their next value exactly at b) or just after it (upper
                // curves are left-continuous). Strictly between probe points
                // {prev, prev+1} and {b} it must be constant.
                let lo = prev.saturating_add(TimeNs::from_ns(1));
                let hi = TimeNs::from_ns(b.as_ns().saturating_sub(1));
                if hi > lo {
                    prop_assert_eq!(curve.eval(lo), curve.eval(hi),
                        "curve changed strictly between jump points {} and {}", prev, b);
                }
                prev = b;
            }
        }
    }

    /// FIFO capacity really prevents overflow: simulating the worst-case
    /// producer pattern (all events as early as jitter allows) against the
    /// worst-case consumer (all events as late as possible) never exceeds
    /// the computed capacity.
    #[test]
    fn fifo_capacity_is_sufficient(p in 1u64..=200, jp in 0u64..=400, jc in 0u64..=400) {
        let period = TimeNs::from_us(p * 100);
        let producer = PjdModel::new(period, TimeNs::from_us(jp * 100), TimeNs::ZERO);
        let consumer = PjdModel::new(period, TimeNs::from_us(jc * 100), TimeNs::ZERO);
        let cap = sizing::fifo_capacity(&producer, &consumer).expect("equal rates are bounded");

        // Worst-case trace: producer event n at n·P (early), consumer event
        // n completes at n·P + Jc (late). Backlog at time t:
        // arrivals(t) − departures(t).
        let n_events = 200u64;
        let mut max_backlog = 0i64;
        for n in 0..n_events {
            let arrival = period * n;
            // arrivals strictly ≤ `arrival`: n + 1 (events 0..=n)
            let arrivals = (n + 1) as i64;
            // departures with departure time ≤ arrival:
            // event m departs at m·P + Jc.
            let jc_t = TimeNs::from_us(jc * 100);
            let departures = if arrival < jc_t {
                0
            } else {
                ((arrival - jc_t).div_floor(period) + 1) as i64
            };
            max_backlog = max_backlog.max(arrivals - departures);
        }
        prop_assert!(max_backlog as u64 <= cap,
            "observed worst-case backlog {} exceeds computed capacity {}", max_backlog, cap);
    }

    /// The divergence threshold guarantees no false positives: for any two
    /// healthy event traces consistent with the replica models, the running
    /// count difference stays strictly below D.
    #[test]
    fn threshold_has_no_false_positives(p in 1u64..=100, j1 in 0u64..=300, j2 in 0u64..=300, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let period = TimeNs::from_us(p * 100);
        let r1 = PjdModel::new(period, TimeNs::from_us(j1 * 100), TimeNs::ZERO);
        let r2 = PjdModel::new(period, TimeNs::from_us(j2 * 100), TimeNs::ZERO);
        let d = sizing::divergence_threshold(&r1, &r2).expect("equal rates");

        // Random traces consistent with the models: event n at n·P + U(0..J).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut trace = |m: &PjdModel| -> Vec<TimeNs> {
            (0..150u64)
                .map(|n| {
                    let jit = if m.jitter == TimeNs::ZERO {
                        0
                    } else {
                        rng.gen_range(0..=m.jitter.as_ns())
                    };
                    m.period * n + TimeNs::from_ns(jit)
                })
                .collect()
        };
        let (t1, t2) = (trace(&r1), trace(&r2));
        // Count difference at every event time.
        let count_at = |tr: &[TimeNs], t: TimeNs| tr.iter().filter(|x| **x <= t).count() as i64;
        for t in t1.iter().chain(t2.iter()) {
            let diff = (count_at(&t1, *t) - count_at(&t2, *t)).unsigned_abs();
            prop_assert!(diff < d, "divergence {} reached threshold {} fault-free", diff, d);
        }
    }

    /// Detection bound dominates any simulated fail-stop detection time.
    #[test]
    fn fail_stop_bound_is_sound(p in 1u64..=100, j in 0u64..=300, d in 1u64..=6, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let healthy = PjdModel::new(TimeNs::from_us(p * 100), TimeNs::from_us(j * 100), TimeNs::ZERO);
        let bound = detection::fail_stop_detection_bound(&[healthy, healthy], d);
        let surplus = detection::detection_surplus(d);

        // Healthy replica produces events at n·P + U(0..J); the fault occurs
        // at time 0 with the faulty replica ahead by (D−1) tokens (worst
        // case). Detection at the surplus-th healthy event.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jit = |rng: &mut rand::rngs::StdRng| if healthy.jitter == TimeNs::ZERO { 0 } else { rng.gen_range(0..=healthy.jitter.as_ns()) };
        // Event n (1-based) occurs no later than n·P + J; detection happens
        // at event number `surplus` counted from the fault.
        let detect_at = healthy.period * surplus + TimeNs::from_ns(jit(&mut rng));
        prop_assert!(detect_at <= bound,
            "simulated detection {} exceeded bound {}", detect_at, bound);
    }
}

#[test]
fn sup_matches_bruteforce_on_fine_grid() {
    // Brute-force cross-check on a coarse-grained model where exhaustive
    // nanosecond enumeration is feasible at microsecond granularity.
    let a = PjdModel::new(TimeNs::from_us(7), TimeNs::from_us(3), TimeNs::ZERO);
    let b = PjdModel::new(TimeNs::from_us(7), TimeNs::from_us(10), TimeNs::ZERO);
    let horizon = TimeNs::from_us(500);
    let sup = sup_difference(&a.upper(), &b.lower(), horizon).expect("bounded");
    let mut brute = 0u64;
    for ns in 0..=horizon.as_ns() {
        let t = TimeNs::from_ns(ns);
        brute = brute.max(a.upper().eval(t).saturating_sub(b.lower().eval(t)));
    }
    assert_eq!(sup.value, brute);
}

#[test]
fn first_delta_matches_bruteforce() {
    let healthy = PjdModel::new(TimeNs::from_us(9), TimeNs::from_us(4), TimeNs::ZERO);
    let residual = StaircaseCurve::new(vec![(TimeNs::ZERO, 2)]);
    let horizon = TimeNs::from_us(2_000);
    let target = 9;
    let got = first_delta_reaching(&healthy.lower(), &residual, target, horizon);
    let mut brute = None;
    for ns in 0..=horizon.as_ns() {
        let t = TimeNs::from_ns(ns);
        if healthy.lower().eval(t).saturating_sub(residual.eval(t)) >= target {
            brute = Some(t);
            break;
        }
    }
    assert_eq!(got, brute);
}

#[test]
fn zero_curve_never_reaches_positive_target() {
    assert_eq!(
        first_delta_reaching(&ZeroCurve, &ZeroCurve, 1, TimeNs::from_secs(1)),
        None
    );
}
