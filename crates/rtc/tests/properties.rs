//! Property-style tests for the real-time calculus core.
//!
//! Originally written with `proptest`; rewritten as deterministic seeded
//! sweeps so the workspace builds with zero external dependencies. Each
//! test enumerates a fixed pseudo-random case set from a SplitMix64
//! stream, so failures reproduce exactly and no registry access is
//! needed.

use rtft_rtc::{
    detection, first_delta_reaching, sizing, sup_difference, Curve, PjdModel, StaircaseCurve,
    TimeNs, ZeroCurve,
};

/// Minimal SplitMix64 (same constants as `rtft_kpn::SplitMix64`, inlined
/// here because `rtft-rtc` sits below the KPN crate in the dependency DAG).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi` (simple modulo; bias is irrelevant for tests).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// A pseudo-random PJD model: periods 0.1–100 ms, jitter 0–3 periods.
fn pjd_case(rng: &mut Rng) -> PjdModel {
    let p = rng.range(1, 1_000);
    let j = rng.range(0, 3_000);
    PjdModel::new(
        TimeNs::from_us(p * 100),
        TimeNs::from_us(j * 100),
        TimeNs::ZERO,
    )
}

/// Curves are monotone and upper dominates lower at every probe point.
#[test]
fn pjd_curves_monotone_and_ordered() {
    let mut rng = Rng::new(0x5eed_0001);
    for _case in 0..32 {
        let m = pjd_case(&mut rng);
        let mut ds: Vec<TimeNs> = (0..16)
            .map(|_| TimeNs::from_ns(rng.range(0, 10_000_000_000 - 1)))
            .collect();
        ds.sort_unstable();
        let (u, l) = (m.upper(), m.lower());
        let mut prev_u = 0;
        let mut prev_l = 0;
        for d in ds {
            let (vu, vl) = (u.eval(d), l.eval(d));
            assert!(vu >= prev_u, "upper curve must be non-decreasing ({m:?})");
            assert!(vl >= prev_l, "lower curve must be non-decreasing ({m:?})");
            assert!(vu >= vl, "upper must dominate lower ({m:?})");
            prev_u = vu;
            prev_l = vl;
        }
    }
}

/// The upper curve is subadditive for zero-jitter (strictly periodic)
/// models: α(a + b) ≤ α(a) + α(b).
#[test]
fn periodic_upper_is_subadditive() {
    let mut rng = Rng::new(0x5eed_0002);
    for _case in 0..64 {
        let p = rng.range(1, 500);
        let m = PjdModel::periodic(TimeNs::from_us(p * 100));
        let u = m.upper();
        let ta = TimeNs::from_ns(rng.range(0, 1_000_000_000 - 1));
        let tb = TimeNs::from_ns(rng.range(0, 1_000_000_000 - 1));
        assert!(
            u.eval(ta + tb) <= u.eval(ta) + u.eval(tb),
            "subadditivity violated: P={p}00us a={ta} b={tb}"
        );
    }
}

/// The lower curve is superadditive: α(a + b) ≥ α(a) + α(b).
#[test]
fn lower_is_superadditive() {
    let mut rng = Rng::new(0x5eed_0003);
    for _case in 0..64 {
        let m = pjd_case(&mut rng);
        let l = m.lower();
        let ta = TimeNs::from_ns(rng.range(0, 1_000_000_000 - 1));
        let tb = TimeNs::from_ns(rng.range(0, 1_000_000_000 - 1));
        assert!(
            l.eval(ta + tb) >= l.eval(ta) + l.eval(tb),
            "superadditivity violated: {m:?} a={ta} b={tb}"
        );
    }
}

/// Jump points really are the only places the curves change: between
/// consecutive jump points the value is constant.
#[test]
fn jump_points_are_complete() {
    let mut rng = Rng::new(0x5eed_0004);
    for _case in 0..24 {
        let m = pjd_case(&mut rng);
        let horizon = m.period * 12 + m.jitter;
        for curve in [&m.upper() as &dyn Curve, &m.lower() as &dyn Curve] {
            let mut jumps = curve.jump_points(horizon);
            jumps.push(horizon);
            jumps.sort_unstable();
            jumps.dedup();
            let mut prev = TimeNs::ZERO;
            for b in jumps {
                // The curve may change at a jump point (lower curves attain
                // their next value exactly at b) or just after it (upper
                // curves are left-continuous). Strictly between probe points
                // {prev, prev+1} and {b} it must be constant.
                let lo = prev.saturating_add(TimeNs::from_ns(1));
                let hi = TimeNs::from_ns(b.as_ns().saturating_sub(1));
                if hi > lo {
                    assert_eq!(
                        curve.eval(lo),
                        curve.eval(hi),
                        "curve changed strictly between jump points {prev} and {b} ({m:?})"
                    );
                }
                prev = b;
            }
        }
    }
}

/// FIFO capacity really prevents overflow: simulating the worst-case
/// producer pattern (all events as early as jitter allows) against the
/// worst-case consumer (all events as late as possible) never exceeds
/// the computed capacity.
#[test]
fn fifo_capacity_is_sufficient() {
    let mut rng = Rng::new(0x5eed_0005);
    for _case in 0..48 {
        let p = rng.range(1, 200);
        let jp = rng.range(0, 400);
        let jc = rng.range(0, 400);
        let period = TimeNs::from_us(p * 100);
        let producer = PjdModel::new(period, TimeNs::from_us(jp * 100), TimeNs::ZERO);
        let consumer = PjdModel::new(period, TimeNs::from_us(jc * 100), TimeNs::ZERO);
        let cap = sizing::fifo_capacity(&producer, &consumer).expect("equal rates are bounded");

        // Worst-case trace: producer event n at n·P (early), consumer event
        // n completes at n·P + Jc (late). Backlog at time t:
        // arrivals(t) − departures(t).
        let n_events = 200u64;
        let mut max_backlog = 0i64;
        for n in 0..n_events {
            let arrival = period * n;
            // arrivals strictly ≤ `arrival`: n + 1 (events 0..=n)
            let arrivals = (n + 1) as i64;
            // departures with departure time ≤ arrival:
            // event m departs at m·P + Jc.
            let jc_t = TimeNs::from_us(jc * 100);
            let departures = if arrival < jc_t {
                0
            } else {
                ((arrival - jc_t).div_floor(period) + 1) as i64
            };
            max_backlog = max_backlog.max(arrivals - departures);
        }
        assert!(
            max_backlog as u64 <= cap,
            "observed worst-case backlog {max_backlog} exceeds computed capacity {cap}"
        );
    }
}

/// The divergence threshold guarantees no false positives: for any two
/// healthy event traces consistent with the replica models, the running
/// count difference stays strictly below D.
#[test]
fn threshold_has_no_false_positives() {
    let mut rng = Rng::new(0x5eed_0006);
    for _case in 0..32 {
        let p = rng.range(1, 100);
        let j1 = rng.range(0, 300);
        let j2 = rng.range(0, 300);
        let period = TimeNs::from_us(p * 100);
        let r1 = PjdModel::new(period, TimeNs::from_us(j1 * 100), TimeNs::ZERO);
        let r2 = PjdModel::new(period, TimeNs::from_us(j2 * 100), TimeNs::ZERO);
        let d = sizing::divergence_threshold(&r1, &r2).expect("equal rates");

        // Random traces consistent with the models: event n at n·P + U(0..J).
        let trace = |m: &PjdModel, rng: &mut Rng| -> Vec<TimeNs> {
            (0..150u64)
                .map(|n| {
                    let jit = if m.jitter == TimeNs::ZERO {
                        0
                    } else {
                        rng.range(0, m.jitter.as_ns())
                    };
                    m.period * n + TimeNs::from_ns(jit)
                })
                .collect()
        };
        let t1 = trace(&r1, &mut rng);
        let t2 = trace(&r2, &mut rng);
        // Count difference at every event time.
        let count_at = |tr: &[TimeNs], t: TimeNs| tr.iter().filter(|x| **x <= t).count() as i64;
        for t in t1.iter().chain(t2.iter()) {
            let diff = (count_at(&t1, *t) - count_at(&t2, *t)).unsigned_abs();
            assert!(
                diff < d,
                "divergence {diff} reached threshold {d} fault-free"
            );
        }
    }
}

/// Detection bound dominates any simulated fail-stop detection time.
#[test]
fn fail_stop_bound_is_sound() {
    let mut rng = Rng::new(0x5eed_0007);
    for _case in 0..64 {
        let p = rng.range(1, 100);
        let j = rng.range(0, 300);
        let d = rng.range(1, 6);
        let healthy = PjdModel::new(
            TimeNs::from_us(p * 100),
            TimeNs::from_us(j * 100),
            TimeNs::ZERO,
        );
        let bound = detection::fail_stop_detection_bound(&[healthy, healthy], d);
        let surplus = detection::detection_surplus(d);

        // Healthy replica produces events at n·P + U(0..J); the fault occurs
        // at time 0 with the faulty replica ahead by (D−1) tokens (worst
        // case). Detection at the surplus-th healthy event.
        let jit = if healthy.jitter == TimeNs::ZERO {
            0
        } else {
            rng.range(0, healthy.jitter.as_ns())
        };
        // Event n (1-based) occurs no later than n·P + J; detection happens
        // at event number `surplus` counted from the fault.
        let detect_at = healthy.period * surplus + TimeNs::from_ns(jit);
        assert!(
            detect_at <= bound,
            "simulated detection {detect_at} exceeded bound {bound}"
        );
    }
}

#[test]
fn sup_matches_bruteforce_on_fine_grid() {
    // Brute-force cross-check on a coarse-grained model where exhaustive
    // nanosecond enumeration is feasible at microsecond granularity.
    let a = PjdModel::new(TimeNs::from_us(7), TimeNs::from_us(3), TimeNs::ZERO);
    let b = PjdModel::new(TimeNs::from_us(7), TimeNs::from_us(10), TimeNs::ZERO);
    let horizon = TimeNs::from_us(500);
    let sup = sup_difference(&a.upper(), &b.lower(), horizon).expect("bounded");
    let mut brute = 0u64;
    for ns in 0..=horizon.as_ns() {
        let t = TimeNs::from_ns(ns);
        brute = brute.max(a.upper().eval(t).saturating_sub(b.lower().eval(t)));
    }
    assert_eq!(sup.value, brute);
}

#[test]
fn first_delta_matches_bruteforce() {
    let healthy = PjdModel::new(TimeNs::from_us(9), TimeNs::from_us(4), TimeNs::ZERO);
    let residual = StaircaseCurve::new(vec![(TimeNs::ZERO, 2)]);
    let horizon = TimeNs::from_us(2_000);
    let target = 9;
    let got = first_delta_reaching(&healthy.lower(), &residual, target, horizon);
    let mut brute = None;
    for ns in 0..=horizon.as_ns() {
        let t = TimeNs::from_ns(ns);
        if healthy.lower().eval(t).saturating_sub(residual.eval(t)) >= target {
            brute = Some(t);
            break;
        }
    }
    assert_eq!(got, brute);
}

#[test]
fn zero_curve_never_reaches_positive_target() {
    assert_eq!(
        first_delta_reaching(&ZeroCurve, &ZeroCurve, 1, TimeNs::from_secs(1)),
        None
    );
}
