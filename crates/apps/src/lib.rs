//! # rtft-apps — the paper's streaming applications, rebuilt from scratch
//!
//! The three real-time applications the paper validates its framework on
//! (§4.2 of Rai et al., DAC 2014), implemented as determinate Kahn process
//! networks over `rtft-kpn` with real DSP kernels:
//!
//! * [`mjpeg`] — an MJPEG-lite codec (8×8 DCT, JPEG quantisation tables,
//!   zig-zag, RLE + Exp-Golomb entropy coding) with the paper's
//!   `splitstream` / `mergeframe` pipeline shape;
//! * [`adpcm`] — the IMA ADPCM encoder + decoder (exact 4:1 compression of
//!   16-bit PCM);
//! * [`h264`] — an H.264-lite intra encoder (16×16 intra prediction, the
//!   H.264 4×4 integer core transform, QP-law quantisation, Exp-Golomb
//!   entropy coding) with a verifying decoder;
//! * [`video`] / [`adpcm::AudioSource`] — deterministic synthetic
//!   workloads matching the paper's token sizes and rates (76.8 KB frames
//!   @ ~30 fps, 3 KB audio blocks @ ~6.3 ms);
//! * [`profiles`] — the reconstructed Table 1 timing models;
//! * [`networks`] — [`networks::App`] wires each application into the
//!   `rtft-core` reference / duplicated network builders.
//!
//! # Example: a fault-tolerant ADPCM run
//!
//! ```
//! use rtft_apps::networks::App;
//! use rtft_core::{build_duplicated, FaultPlan};
//! use rtft_kpn::Engine;
//! use rtft_rtc::TimeNs;
//!
//! let cfg = App::Adpcm
//!     .duplication_config(1, 40)?
//!     .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_ms(100)));
//! let (net, ids) = build_duplicated(&cfg, &App::Adpcm.replica_factory([7, 8]));
//! let mut engine = Engine::new(net);
//! engine.run_until(TimeNs::from_secs(10));
//! assert_eq!(ids.consumer_arrivals(engine.network()).len(), 40);
//! # Ok::<(), rtft_rtc::CurveAnalysisError>(())
//! ```

#![warn(missing_docs)]

pub mod adpcm;
pub mod bitio;
pub mod dct;
pub mod h264;
pub mod mjpeg;
pub mod networks;
pub mod profiles;
pub mod stages;
pub mod video;

pub use networks::App;
pub use profiles::AppProfile;
