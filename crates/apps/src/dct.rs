//! 8×8 block transforms: forward/inverse DCT-II, zig-zag scan and
//! quantisation — the kernel of the MJPEG-lite codec.

/// Zig-zag scan order of an 8×8 block (row-major indices).
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The JPEG Annex K luminance quantisation table.
pub const QTABLE_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Scales the base quantisation table by a JPEG-style quality factor
/// (1 = worst, 100 = best).
///
/// # Panics
///
/// Panics if `quality` is 0 or > 100.
pub fn scaled_qtable(quality: u8) -> [u16; 64] {
    assert!((1..=100).contains(&quality), "quality must be 1..=100");
    let scale: u32 = if quality < 50 {
        5000 / quality as u32
    } else {
        200 - 2 * quality as u32
    };
    let mut out = [0u16; 64];
    for (o, q) in out.iter_mut().zip(QTABLE_LUMA.iter()) {
        *o = (((*q as u32) * scale + 50) / 100).clamp(1, 255) as u16;
    }
    out
}

/// Basis table: `BASIS[u][x] = c(u) · cos((2x+1)·u·π/16) / 2`, so a 1-D
/// DCT is a plain matrix product and the 2-D transform is two separable
/// passes (row then column) — 4× fewer multiplies than the direct form.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0f32; 8]; 8];
        for (u, row) in t.iter_mut().enumerate() {
            let cu = if u == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = 0.5 * cu * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

/// Forward 8×8 DCT-II on a block of samples (level-shifted by −128), row
/// major in, row major out. Separable row/column implementation.
pub fn fdct8x8(pixels: &[u8; 64]) -> [f32; 64] {
    let b = basis();
    let mut rows = [0f32; 64];
    // 1-D DCT along each row.
    for r in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for x in 0..8 {
                s += (pixels[r * 8 + x] as f32 - 128.0) * b[u][x];
            }
            rows[r * 8 + u] = s;
        }
    }
    // 1-D DCT along each column.
    let mut out = [0f32; 64];
    for c in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for y in 0..8 {
                s += rows[y * 8 + c] * b[u][y];
            }
            out[u * 8 + c] = s;
        }
    }
    out
}

/// Inverse 8×8 DCT (IDCT), producing level-shifted-back pixel samples.
/// Separable row/column implementation.
pub fn idct8x8(coeffs: &[f32; 64]) -> [u8; 64] {
    let b = basis();
    // Inverse along columns first.
    let mut cols = [0f32; 64];
    for c in 0..8 {
        for y in 0..8 {
            let mut s = 0f32;
            for u in 0..8 {
                s += coeffs[u * 8 + c] * b[u][y];
            }
            cols[y * 8 + c] = s;
        }
    }
    // Inverse along rows.
    let mut out = [0u8; 64];
    for r in 0..8 {
        for x in 0..8 {
            let mut s = 0f32;
            for u in 0..8 {
                s += cols[r * 8 + u] * b[u][x];
            }
            out[r * 8 + x] = (s + 128.0).round().clamp(0.0, 255.0) as u8;
        }
    }
    out
}

/// Quantises DCT coefficients and emits them in zig-zag order.
pub fn quantize_zigzag(coeffs: &[f32; 64], qtable: &[u16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for (zz, slot) in ZIGZAG.iter().zip(out.iter_mut()) {
        *slot = (coeffs[*zz] / qtable[*zz] as f32).round() as i16;
    }
    out
}

/// Dequantises zig-zag coefficients back into a row-major block.
pub fn dequantize_zigzag(q: &[i16; 64], qtable: &[u16; 64]) -> [f32; 64] {
    let mut out = [0f32; 64];
    for (i, zz) in ZIGZAG.iter().enumerate() {
        out[*zz] = q[i] as f32 * qtable[*zz] as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for z in ZIGZAG {
            assert!(!seen[z], "duplicate index {z}");
            seen[z] = true;
        }
        assert!(seen.iter().all(|s| *s));
        // First few entries follow the classic pattern.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
    }

    #[test]
    fn flat_block_has_only_dc() {
        let block = [100u8; 64];
        let coeffs = fdct8x8(&block);
        assert!(
            (coeffs[0] - (100.0 - 128.0) * 8.0).abs() < 0.01,
            "DC = 8·mean shift"
        );
        for (i, c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-3, "AC coefficient {i} should vanish: {c}");
        }
    }

    #[test]
    fn dct_idct_roundtrip_is_near_lossless() {
        let mut block = [0u8; 64];
        for (i, p) in block.iter_mut().enumerate() {
            *p = ((i * 7 + 13) % 256) as u8;
        }
        let rec = idct8x8(&fdct8x8(&block));
        for (a, b) in block.iter().zip(rec.iter()) {
            assert!((*a as i16 - *b as i16).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_roundtrip_bounded_error() {
        let mut block = [0u8; 64];
        for (i, p) in block.iter_mut().enumerate() {
            *p = (128.0 + 80.0 * ((i as f32) * 0.37).sin()) as u8;
        }
        let qtable = scaled_qtable(75);
        let q = quantize_zigzag(&fdct8x8(&block), &qtable);
        let rec = idct8x8(&dequantize_zigzag(&q, &qtable));
        // Mean absolute error stays small at quality 75.
        let mae: f32 = block
            .iter()
            .zip(rec.iter())
            .map(|(a, b)| (*a as f32 - *b as f32).abs())
            .sum::<f32>()
            / 64.0;
        assert!(mae < 6.0, "MAE {mae}");
    }

    #[test]
    fn higher_quality_means_finer_tables() {
        let q30 = scaled_qtable(30);
        let q90 = scaled_qtable(90);
        assert!(q90.iter().zip(q30.iter()).all(|(h, l)| h <= l));
        // Quality 50 is the identity scaling.
        assert_eq!(scaled_qtable(50), QTABLE_LUMA);
    }

    #[test]
    #[should_panic(expected = "quality must be")]
    fn quality_zero_rejected() {
        let _ = scaled_qtable(0);
    }

    #[test]
    fn quantized_blocks_are_sparse() {
        // Quantisation zeroes most high-frequency coefficients — that's
        // what makes the RLE entropy stage effective.
        let mut block = [0u8; 64];
        for (i, p) in block.iter_mut().enumerate() {
            *p = (128 + (i as i32 % 5) - 2) as u8; // gentle texture
        }
        let q = quantize_zigzag(&fdct8x8(&block), &scaled_qtable(75));
        let zeros = q.iter().filter(|c| **c == 0).count();
        assert!(zeros > 48, "only {zeros}/64 zeros");
    }
}
