//! Bit-level I/O and Exp-Golomb coding, shared by the MJPEG-lite and
//! H.264-lite entropy coders.

/// MSB-first bit writer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0–7).
    bit_pos: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the lowest `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn put_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("byte pushed");
            *last |= bit << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(bit as u64, 1);
    }

    /// Unsigned Exp-Golomb code (`ue(v)` in H.264 parlance).
    pub fn put_ue(&mut self, v: u64) {
        let code = v + 1;
        let len = 64 - code.leading_zeros() as u8; // bit length of code
        self.put_bits(0, len - 1); // leading zeros
        self.put_bits(code, len);
    }

    /// Signed Exp-Golomb code (`se(v)`): 0, 1, −1, 2, −2, …
    pub fn put_se(&mut self, v: i64) {
        let mapped = if v > 0 {
            (v as u64) * 2 - 1
        } else {
            (-v as u64) * 2
        };
        self.put_ue(mapped);
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // absolute bit position
}

/// Error from reading past the end of a bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamExhausted;

impl std::fmt::Display for BitstreamExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream exhausted")
    }
}

impl std::error::Error for BitstreamExhausted {}

impl<'a> BitReader<'a> {
    /// A reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `count` bits, MSB first.
    ///
    /// # Errors
    ///
    /// [`BitstreamExhausted`] past the end of input.
    pub fn get_bits(&mut self, count: u8) -> Result<u64, BitstreamExhausted> {
        let mut out = 0u64;
        for _ in 0..count {
            let byte = self.pos / 8;
            if byte >= self.bytes.len() {
                return Err(BitstreamExhausted);
            }
            let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// [`BitstreamExhausted`] past the end of input.
    pub fn get_bit(&mut self) -> Result<bool, BitstreamExhausted> {
        Ok(self.get_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// [`BitstreamExhausted`] past the end of input.
    pub fn get_ue(&mut self) -> Result<u64, BitstreamExhausted> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 63 {
                return Err(BitstreamExhausted);
            }
        }
        let rest = self.get_bits(zeros)?;
        Ok(((1u64 << zeros) | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// [`BitstreamExhausted`] past the end of input.
    pub fn get_se(&mut self) -> Result<i64, BitstreamExhausted> {
        let v = self.get_ue()?;
        Ok(if v % 2 == 1 {
            (v.div_ceil(2)) as i64
        } else {
            -((v / 2) as i64)
        })
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xDEAD, 16);
        w.put_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3).unwrap(), 0b101);
        assert_eq!(r.get_bits(16).unwrap(), 0xDEAD);
        assert!(r.get_bit().unwrap());
    }

    #[test]
    fn ue_roundtrip_exhaustive_small() {
        for v in 0..1000u64 {
            let mut w = BitWriter::new();
            w.put_ue(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        for v in -500i64..=500 {
            let mut w = BitWriter::new();
            w.put_se(v);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.get_se().unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn ue_known_codewords() {
        // Classic table: 0 → "1", 1 → "010", 2 → "011", 3 → "00100".
        let encode = |v: u64| {
            let mut w = BitWriter::new();
            w.put_ue(v);
            (w.bit_len(), w.into_bytes())
        };
        assert_eq!(encode(0), (1, vec![0b1000_0000]));
        assert_eq!(encode(1), (3, vec![0b0100_0000]));
        assert_eq!(encode(2), (3, vec![0b0110_0000]));
        assert_eq!(encode(3), (5, vec![0b0010_0000]));
    }

    #[test]
    fn exhaustion_is_reported() {
        let bytes = [0u8; 1];
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bits(8).is_ok());
        assert_eq!(r.get_bit(), Err(BitstreamExhausted));
        // All-zero stream never terminates a ue() prefix.
        let mut r2 = BitReader::new(&bytes);
        assert!(r2.get_ue().is_err());
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 8);
        w.put_bit(false);
        assert_eq!(w.bit_len(), 9);
    }
}
