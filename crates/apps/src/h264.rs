//! The H.264-lite intra encoder (with a verifying decoder).
//!
//! The paper's third application is an H.264 encoder (results summarised
//! only; §4.2–4.3). We rebuild the intra-frame path from scratch:
//! 16×16 macroblocks with DC / vertical / horizontal intra prediction from
//! *reconstructed* neighbours, the H.264 4×4 integer core transform,
//! flat quantisation derived from a QP, a 4×4 zig-zag scan and Exp-Golomb
//! entropy coding (CAVLC-lite). The encoder contains the standard
//! reconstruction loop, so prediction never drifts from what a decoder
//! sees — the bundled decoder round-trips the stream and is used by the
//! tests to verify it.

use crate::bitio::{BitReader, BitWriter, BitstreamExhausted};
use crate::video::Frame;
use std::fmt;

const MAGIC: u16 = 0x4831; // "H1"
const MB: usize = 16;

/// Default QP used by the experiments (mid-range fidelity).
pub const DEFAULT_QP: u8 = 28;

/// 4×4 zig-zag scan order.
const ZIGZAG4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// H.264 forward core transform matrix.
const CF: [[i32; 4]; 4] = [[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]];
/// Row norms² of `CF` (used to fold the orthonormalisation into quant).
const NORM2: [f64; 4] = [4.0, 10.0, 4.0, 10.0];

/// Intra 16×16 prediction modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredMode {
    /// Mean of available neighbours (128 when none).
    Dc,
    /// Copy the reconstructed row above.
    Vertical,
    /// Copy the reconstructed column to the left.
    Horizontal,
}

impl PredMode {
    fn code(self) -> u64 {
        match self {
            PredMode::Dc => 0,
            PredMode::Vertical => 1,
            PredMode::Horizontal => 2,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(PredMode::Dc),
            1 => Some(PredMode::Vertical),
            2 => Some(PredMode::Horizontal),
            _ => None,
        }
    }
}

/// Decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H264Error {
    /// Stream does not start with the H.264-lite magic.
    BadMagic,
    /// Header fields are invalid.
    BadHeader,
    /// Bitstream ended prematurely or is inconsistent.
    Truncated,
}

impl fmt::Display for H264Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H264Error::BadMagic => write!(f, "not an H.264-lite stream"),
            H264Error::BadHeader => write!(f, "invalid H.264-lite header"),
            H264Error::Truncated => write!(f, "truncated H.264-lite stream"),
        }
    }
}

impl std::error::Error for H264Error {}

impl From<BitstreamExhausted> for H264Error {
    fn from(_: BitstreamExhausted) -> Self {
        H264Error::Truncated
    }
}

/// Quantisation step for a QP (standard `0.625 · 2^(QP/6)` law).
fn qstep(qp: u8) -> f64 {
    0.625 * 2f64.powf(qp as f64 / 6.0)
}

/// Forward 4×4 core transform: `W = C·X·Cᵀ`.
fn fwd4x4(x: &[i32; 16]) -> [i32; 16] {
    let mut tmp = [0i32; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut s = 0;
            for k in 0..4 {
                s += CF[i][k] * x[k * 4 + j];
            }
            tmp[i * 4 + j] = s;
        }
    }
    let mut out = [0i32; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut s = 0;
            for k in 0..4 {
                s += tmp[i * 4 + k] * CF[j][k];
            }
            out[i * 4 + j] = s;
        }
    }
    out
}

/// Inverse of [`fwd4x4`]: `X = Cᵀ·(D·W·D)·C` with `D = diag(1/‖row‖²)`.
fn inv4x4(w: &[i32; 16]) -> [i32; 16] {
    let mut scaled = [0f64; 16];
    for i in 0..4 {
        for j in 0..4 {
            scaled[i * 4 + j] = w[i * 4 + j] as f64 / (NORM2[i] * NORM2[j]);
        }
    }
    let mut tmp = [0f64; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut s = 0.0;
            for k in 0..4 {
                s += CF[k][i] as f64 * scaled[k * 4 + j];
            }
            tmp[i * 4 + j] = s;
        }
    }
    let mut out = [0i32; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut s = 0.0;
            for k in 0..4 {
                s += tmp[i * 4 + k] * CF[k][j] as f64;
            }
            out[i * 4 + j] = s.round() as i32;
        }
    }
    out
}

/// Position-dependent quantiser divisor folding in the transform norms.
fn qdiv(i: usize, j: usize, qp: u8) -> f64 {
    qstep(qp) * (NORM2[i] * NORM2[j]).sqrt()
}

fn quant(w: &[i32; 16], qp: u8) -> [i32; 16] {
    let mut out = [0i32; 16];
    for i in 0..4 {
        for j in 0..4 {
            out[i * 4 + j] = (w[i * 4 + j] as f64 / qdiv(i, j, qp)).round() as i32;
        }
    }
    out
}

fn dequant(z: &[i32; 16], qp: u8) -> [i32; 16] {
    let mut out = [0i32; 16];
    for i in 0..4 {
        for j in 0..4 {
            out[i * 4 + j] = (z[i * 4 + j] as f64 * qdiv(i, j, qp)).round() as i32;
        }
    }
    out
}

/// Computes the 16×16 prediction for a macroblock from reconstructed
/// neighbours.
fn predict(recon: &[u8], width: usize, mbx: usize, mby: usize, mode: PredMode) -> [u8; 256] {
    let x0 = mbx * MB;
    let y0 = mby * MB;
    let top: Option<Vec<u8>> = (mby > 0).then(|| {
        (0..MB)
            .map(|dx| recon[(y0 - 1) * width + x0 + dx])
            .collect()
    });
    let left: Option<Vec<u8>> = (mbx > 0).then(|| {
        (0..MB)
            .map(|dy| recon[(y0 + dy) * width + x0 - 1])
            .collect()
    });

    let mut out = [0u8; 256];
    match mode {
        PredMode::Dc => {
            let mut sum = 0u32;
            let mut n = 0u32;
            if let Some(t) = &top {
                sum += t.iter().map(|p| *p as u32).sum::<u32>();
                n += MB as u32;
            }
            if let Some(l) = &left {
                sum += l.iter().map(|p| *p as u32).sum::<u32>();
                n += MB as u32;
            }
            let dc = (sum + n / 2).checked_div(n).map_or(128, |v| v as u8);
            out.fill(dc);
        }
        PredMode::Vertical => {
            let t = top.unwrap_or_else(|| vec![128; MB]);
            for dy in 0..MB {
                out[dy * MB..(dy + 1) * MB].copy_from_slice(&t);
            }
        }
        PredMode::Horizontal => {
            let l = left.unwrap_or_else(|| vec![128; MB]);
            for dy in 0..MB {
                for dx in 0..MB {
                    out[dy * MB + dx] = l[dy];
                }
            }
        }
    }
    out
}

/// Encodes a frame as an H.264-lite intra bitstream.
///
/// # Panics
///
/// Panics if the frame dimensions are not multiples of 16 or `qp > 51`.
pub fn encode(frame: &Frame, qp: u8) -> Vec<u8> {
    assert!(qp <= 51, "QP must be 0..=51");
    assert!(
        frame.width.is_multiple_of(MB) && frame.height.is_multiple_of(MB),
        "frame dimensions must be multiples of 16"
    );
    let (width, height) = (frame.width, frame.height);
    let mut w = BitWriter::new();
    w.put_bits(MAGIC as u64, 16);
    w.put_bits(width as u64, 16);
    w.put_bits(height as u64, 16);
    w.put_bits(qp as u64, 8);

    let mut recon = vec![0u8; width * height];
    for mby in 0..height / MB {
        for mbx in 0..width / MB {
            // Mode decision by SAD against the source.
            let mut best: Option<(PredMode, u64, [u8; 256])> = None;
            for mode in [PredMode::Dc, PredMode::Vertical, PredMode::Horizontal] {
                let pred = predict(&recon, width, mbx, mby, mode);
                let mut sad = 0u64;
                for dy in 0..MB {
                    for dx in 0..MB {
                        let s = frame.at(mbx * MB + dx, mby * MB + dy) as i64;
                        let p = pred[dy * MB + dx] as i64;
                        sad += (s - p).unsigned_abs();
                    }
                }
                if best.as_ref().is_none_or(|(_, b, _)| sad < *b) {
                    best = Some((mode, sad, pred));
                }
            }
            let (mode, _, pred) = best.expect("three candidate modes");
            w.put_ue(mode.code());

            // Residual: 16 4×4 blocks, transform + quant + entropy, with
            // in-loop reconstruction.
            for by in 0..4 {
                for bx in 0..4 {
                    let mut x = [0i32; 16];
                    for dy in 0..4 {
                        for dx in 0..4 {
                            let px = mbx * MB + bx * 4 + dx;
                            let py = mby * MB + by * 4 + dy;
                            let p = pred[(by * 4 + dy) * MB + bx * 4 + dx];
                            x[dy * 4 + dx] = frame.at(px, py) as i32 - p as i32;
                        }
                    }
                    let z = quant(&fwd4x4(&x), qp);
                    // Entropy: zig-zag RLE, flag + ue(run) + se(level), EOB.
                    let mut run = 0u64;
                    for &zi in ZIGZAG4.iter() {
                        let level = z[zi];
                        if level == 0 {
                            run += 1;
                        } else {
                            w.put_bit(true);
                            w.put_ue(run);
                            w.put_se(level as i64);
                            run = 0;
                        }
                    }
                    w.put_bit(false);
                    // Reconstruct exactly as a decoder would.
                    let r = inv4x4(&dequant(&z, qp));
                    for dy in 0..4 {
                        for dx in 0..4 {
                            let px = mbx * MB + bx * 4 + dx;
                            let py = mby * MB + by * 4 + dy;
                            let p = pred[(by * 4 + dy) * MB + bx * 4 + dx] as i32;
                            recon[py * width + px] = (p + r[dy * 4 + dx]).clamp(0, 255) as u8;
                        }
                    }
                }
            }
        }
    }
    w.into_bytes()
}

/// Decodes an H.264-lite stream (verification counterpart of [`encode`]).
///
/// # Errors
///
/// [`H264Error`] on malformed input.
pub fn decode(data: &[u8]) -> Result<Frame, H264Error> {
    let mut r = BitReader::new(data);
    if r.get_bits(16)? as u16 != MAGIC {
        return Err(H264Error::BadMagic);
    }
    let width = r.get_bits(16)? as usize;
    let height = r.get_bits(16)? as usize;
    let qp = r.get_bits(8)? as u8;
    if width == 0
        || height == 0
        || !width.is_multiple_of(MB)
        || !height.is_multiple_of(MB)
        || qp > 51
    {
        return Err(H264Error::BadHeader);
    }

    let mut recon = vec![0u8; width * height];
    for mby in 0..height / MB {
        for mbx in 0..width / MB {
            let mode = PredMode::from_code(r.get_ue()?).ok_or(H264Error::Truncated)?;
            let pred = predict(&recon, width, mbx, mby, mode);
            for by in 0..4 {
                for bx in 0..4 {
                    let mut z = [0i32; 16];
                    let mut idx = 0usize;
                    while r.get_bit()? {
                        idx += r.get_ue()? as usize;
                        if idx >= 16 {
                            return Err(H264Error::Truncated);
                        }
                        z[ZIGZAG4[idx]] = r.get_se()? as i32;
                        idx += 1;
                    }
                    let res = inv4x4(&dequant(&z, qp));
                    for dy in 0..4 {
                        for dx in 0..4 {
                            let px = mbx * MB + bx * 4 + dx;
                            let py = mby * MB + by * 4 + dy;
                            let p = pred[(by * 4 + dy) * MB + bx * 4 + dx] as i32;
                            recon[py * width + px] = (p + res[dy * 4 + dx]).clamp(0, 255) as u8;
                        }
                    }
                }
            }
        }
    }
    Ok(Frame::from_pixels(width, height, recon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoSource;

    #[test]
    fn transform_roundtrip_is_exact() {
        let mut x = [0i32; 16];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i as i32 * 13 % 61) - 30;
        }
        assert_eq!(inv4x4(&fwd4x4(&x)), x, "C is orthogonal up to row norms");
    }

    #[test]
    fn qstep_follows_standard_law() {
        // QP+6 doubles the step.
        assert!((qstep(34) / qstep(28) - 2.0).abs() < 1e-9);
        assert!((qstep(0) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn encode_decode_roundtrip_bounded_error() {
        let frame = VideoSource::new(1).frame(0);
        let bits = encode(&frame, 28);
        let decoded = decode(&bits).expect("valid stream");
        let mae = frame.mae(&decoded);
        assert!(mae < 4.0, "MAE {mae} at QP 28");
    }

    #[test]
    fn encoder_reconstruction_matches_decoder() {
        // The in-loop reconstruction must equal the decoder output exactly,
        // or intra prediction would drift.
        let frame = VideoSource::new(6).frame(2);
        let bits = encode(&frame, 36);
        let a = decode(&bits).unwrap();
        let bits2 = encode(&a, 36);
        // Re-encoding the decoded frame at the same QP is near-idempotent —
        // a weak but effective drift check.
        let b = decode(&bits2).unwrap();
        assert!(a.mae(&b) < 2.0);
    }

    #[test]
    fn qp_trades_size_for_error() {
        let frame = VideoSource::new(2).frame(1);
        let fine = encode(&frame, 16);
        let coarse = encode(&frame, 40);
        assert!(fine.len() > coarse.len());
        let mae_fine = frame.mae(&decode(&fine).unwrap());
        let mae_coarse = frame.mae(&decode(&coarse).unwrap());
        assert!(mae_fine < mae_coarse);
    }

    #[test]
    fn encoding_is_determinate() {
        let frame = VideoSource::new(8).frame(4);
        assert_eq!(encode(&frame, 28), encode(&frame, 28));
    }

    #[test]
    fn compresses_the_synthetic_video() {
        let frame = VideoSource::new(1).frame(0);
        let bits = encode(&frame, DEFAULT_QP);
        assert!(bits.len() < frame.pixels.len() / 2, "{} bytes", bits.len());
    }

    #[test]
    fn prediction_modes_are_all_exercised() {
        // A frame with strong vertical and horizontal structure makes the
        // mode decision pick different modes across macroblocks.
        let mut pixels = vec![0u8; 320 * 240];
        for y in 0..240 {
            for x in 0..320 {
                pixels[y * 320 + x] = if x < 160 {
                    (y % 256) as u8
                } else {
                    (x % 256) as u8
                };
            }
        }
        let frame = Frame::from_pixels(320, 240, pixels);
        let bits = encode(&frame, 28);
        let decoded = decode(&bits).unwrap();
        assert!(frame.mae(&decoded) < 3.0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(&[0u8; 16]).unwrap_err(), H264Error::BadMagic);
    }

    #[test]
    fn truncated_rejected() {
        let frame = VideoSource::new(1).frame(0);
        let bits = encode(&frame, 28);
        assert_eq!(decode(&bits[..40]).unwrap_err(), H264Error::Truncated);
    }

    #[test]
    #[should_panic(expected = "QP must be")]
    fn qp_out_of_range_rejected() {
        let _ = encode(&VideoSource::new(1).frame(0), 52);
    }
}
