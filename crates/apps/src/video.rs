//! Synthetic video workloads.
//!
//! The paper's MJPEG experiments decode 320×240 frames (76.8 KB decoded,
//! ~10 KB encoded, ~30 fps). Picture content is irrelevant to the
//! framework — only sizes and rates matter — so we synthesise greyscale
//! frames with enough structure (moving gradients plus deterministic
//! texture) that the codec does real work and compresses to roughly the
//! paper's encoded size.

use rtft_kpn::Bytes;

/// Frame width used throughout the experiments.
pub const FRAME_WIDTH: usize = 320;
/// Frame height used throughout the experiments.
pub const FRAME_HEIGHT: usize = 240;
/// Bytes per decoded greyscale frame (the paper's 76.8 KB token).
pub const FRAME_BYTES: usize = FRAME_WIDTH * FRAME_HEIGHT;

/// A greyscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Pixel width.
    pub width: usize,
    /// Pixel height.
    pub height: usize,
    /// Row-major luma samples.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// A black frame of the experiment geometry.
    pub fn blank() -> Self {
        Frame {
            width: FRAME_WIDTH,
            height: FRAME_HEIGHT,
            pixels: vec![0; FRAME_BYTES],
        }
    }

    /// A frame from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        Frame {
            width,
            height,
            pixels,
        }
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// The frame as an owned byte buffer.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.pixels)
    }

    /// Mean absolute pixel difference to another frame.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn mae(&self, other: &Frame) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height));
        let sum: u64 = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .map(|(a, b)| (*a as i16 - *b as i16).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.pixels.len() as f64
    }
}

/// Deterministic synthetic video: a diagonally drifting gradient with a
/// moving bright disc and mild texture. Frame `n` is a pure function of
/// `(seed, n)`.
#[derive(Debug, Clone, Copy)]
pub struct VideoSource {
    seed: u64,
}

impl VideoSource {
    /// A source with the given seed.
    pub fn new(seed: u64) -> Self {
        VideoSource { seed }
    }

    /// Generates frame `n` at the experiment geometry.
    pub fn frame(&self, n: u64) -> Frame {
        let mut pixels = vec![0u8; FRAME_BYTES];
        let phase = (self.seed % 251) as i64 + n as i64 * 3;
        let (cx, cy) = (
            60 + (n as i64 * 5 + phase) % (FRAME_WIDTH as i64 - 120),
            60 + (n as i64 * 3) % (FRAME_HEIGHT as i64 - 120),
        );
        for y in 0..FRAME_HEIGHT {
            for x in 0..FRAME_WIDTH {
                let grad = ((x as i64 + y as i64 + phase) / 4) % 200;
                let dx = x as i64 - cx;
                let dy = y as i64 - cy;
                let disc = if dx * dx + dy * dy < 1600 { 55 } else { 0 };
                // Deterministic mid/high-frequency texture (hash noise plus
                // a fine checker modulation) so the codec output lands near
                // the paper's ~10 KB encoded frame instead of compressing
                // a flat gradient to nothing.
                let h = (x as u64)
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add((y as u64).wrapping_mul(0x85eb_ca6b))
                    .wrapping_add(self.seed)
                    .wrapping_mul(0xc2b2_ae35);
                let noise = ((h >> 24) % 31) as i64 - 15;
                let checker = if (x / 2 + y / 2) % 2 == 0 { 6 } else { -6 };
                pixels[y * FRAME_WIDTH + x] =
                    (grad + disc + noise + checker + 20).clamp(0, 255) as u8;
            }
        }
        Frame::from_pixels(FRAME_WIDTH, FRAME_HEIGHT, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_geometry_matches_paper() {
        let f = VideoSource::new(1).frame(0);
        assert_eq!(f.pixels.len(), 76_800, "76.8 KB decoded token");
    }

    #[test]
    fn frames_are_deterministic() {
        let a = VideoSource::new(9).frame(5);
        let b = VideoSource::new(9).frame(5);
        assert_eq!(a, b);
    }

    #[test]
    fn consecutive_frames_differ() {
        let src = VideoSource::new(9);
        assert_ne!(src.frame(0), src.frame(1), "motion must be present");
        assert!(src.frame(0).mae(&src.frame(1)) > 0.1);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(VideoSource::new(1).frame(0), VideoSource::new(2).frame(0));
    }

    #[test]
    fn frames_use_wide_dynamic_range() {
        let f = VideoSource::new(3).frame(7);
        let min = f.pixels.iter().min().unwrap();
        let max = f.pixels.iter().max().unwrap();
        assert!(
            max - min > 100,
            "range {min}..{max} too flat to exercise the codec"
        );
    }

    #[test]
    fn mae_of_identical_frames_is_zero() {
        let f = VideoSource::new(3).frame(0);
        assert_eq!(f.mae(&f), 0.0);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn bad_geometry_rejected() {
        let _ = Frame::from_pixels(10, 10, vec![0; 99]);
    }
}
