//! Fan-out / fan-in pipeline stages.
//!
//! The paper's MJPEG pipeline (Fig. 2) contains a `splitstream` process
//! with several outputs and a `mergeframe` process with several inputs;
//! `rtft-kpn`'s [`Transform`](rtft_kpn::Transform) only covers 1-in/1-out
//! stages, so this module provides the general shapes as resumable state
//! machines.

use rtft_kpn::{JitterSampler, Payload, PortId, Process, Syscall, Token, Wakeup};
use rtft_rtc::TimeNs;
use std::fmt;

/// 1-in/N-out: reads a token, computes, writes one token to each output.
pub struct FanOutStage {
    name: String,
    input: PortId,
    outputs: Vec<PortId>,
    base: TimeNs,
    jitter: JitterSampler,
    func: Box<dyn FnMut(Payload) -> Vec<Payload> + Send>,
    out_seq: u64,
    state: FanOutState,
    staged: Vec<Payload>,
    next_out: usize,
}

enum FanOutState {
    Reading,
    Computing,
    Writing,
}

impl fmt::Debug for FanOutStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanOutStage")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl FanOutStage {
    /// Creates a fan-out stage; `func` must return exactly one payload per
    /// output port.
    pub fn new(
        name: impl Into<String>,
        input: PortId,
        outputs: Vec<PortId>,
        base: TimeNs,
        jitter: TimeNs,
        seed: u64,
        func: impl FnMut(Payload) -> Vec<Payload> + Send + 'static,
    ) -> Self {
        assert!(!outputs.is_empty(), "fan-out needs at least one output");
        FanOutStage {
            name: name.into(),
            input,
            outputs,
            base,
            jitter: JitterSampler::new(jitter, seed),
            func: Box::new(func),
            out_seq: 0,
            state: FanOutState::Reading,
            staged: Vec::new(),
            next_out: 0,
        }
    }
}

impl Process for FanOutStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        loop {
            match self.state {
                FanOutState::Reading => {
                    if let Wakeup::ReadDone(ref token) = wake {
                        let outs = (self.func)(token.payload.clone());
                        assert_eq!(
                            outs.len(),
                            self.outputs.len(),
                            "fan-out closure must produce one payload per output"
                        );
                        self.staged = outs;
                        self.next_out = 0;
                        self.state = FanOutState::Computing;
                        let d = self.base + self.jitter.sample();
                        if d > TimeNs::ZERO {
                            return Syscall::Compute(d);
                        }
                        continue;
                    }
                    return Syscall::Read(self.input);
                }
                FanOutState::Computing => {
                    self.state = FanOutState::Writing;
                    continue;
                }
                FanOutState::Writing => {
                    if self.next_out < self.outputs.len() {
                        let payload = self.staged[self.next_out].clone();
                        let port = self.outputs[self.next_out];
                        self.next_out += 1;
                        return Syscall::Write(port, Token::new(self.out_seq, now, payload));
                    }
                    self.out_seq += 1;
                    self.staged.clear();
                    self.state = FanOutState::Reading;
                    return Syscall::Read(self.input);
                }
            }
        }
    }
}

/// N-in/1-out: reads one token from each input (in order), computes,
/// writes the combined token.
pub struct FanInStage {
    name: String,
    inputs: Vec<PortId>,
    output: PortId,
    base: TimeNs,
    jitter: JitterSampler,
    func: Box<dyn FnMut(Vec<Payload>) -> Payload + Send>,
    out_seq: u64,
    state: FanInState,
    staged: Vec<Payload>,
}

enum FanInState {
    Reading,
    Computing,
    Writing,
}

impl fmt::Debug for FanInStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanInStage")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl FanInStage {
    /// Creates a fan-in stage combining one token per input with `func`.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<PortId>,
        output: PortId,
        base: TimeNs,
        jitter: TimeNs,
        seed: u64,
        func: impl FnMut(Vec<Payload>) -> Payload + Send + 'static,
    ) -> Self {
        assert!(!inputs.is_empty(), "fan-in needs at least one input");
        FanInStage {
            name: name.into(),
            inputs,
            output,
            base,
            jitter: JitterSampler::new(jitter, seed),
            func: Box::new(func),
            out_seq: 0,
            state: FanInState::Reading,
            staged: Vec::new(),
        }
    }
}

impl Process for FanInStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        loop {
            match self.state {
                FanInState::Reading => {
                    if let Wakeup::ReadDone(token) = &wake {
                        self.staged.push(token.payload.clone());
                    }
                    if self.staged.len() < self.inputs.len() {
                        return Syscall::Read(self.inputs[self.staged.len()]);
                    }
                    self.state = FanInState::Computing;
                    let d = self.base + self.jitter.sample();
                    if d > TimeNs::ZERO {
                        return Syscall::Compute(d);
                    }
                    continue;
                }
                FanInState::Computing => {
                    let inputs = std::mem::take(&mut self.staged);
                    let out = (self.func)(inputs);
                    let token = Token::new(self.out_seq, now, out);
                    self.out_seq += 1;
                    self.state = FanInState::Writing;
                    return Syscall::Write(self.output, token);
                }
                FanInState::Writing => {
                    self.state = FanInState::Reading;
                    return Syscall::Read(self.inputs[0]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::{ChannelId, Collector, Engine, Fifo, Network, PjdSource, RunOutcome};
    use rtft_rtc::PjdModel;

    #[test]
    fn fan_out_duplicates_across_outputs() {
        let mut net = Network::new();
        let input = net.add_channel(Fifo::new("in", 4));
        let out_a = net.add_channel(Fifo::new("a", 8));
        let out_b = net.add_channel(Fifo::new("b", 8));
        let model = PjdModel::periodic(TimeNs::from_ms(10));
        net.add_process(PjdSource::new(
            "src",
            PortId::of(input),
            model,
            0,
            Some(5),
            Payload::U64,
        ));
        net.add_process(FanOutStage::new(
            "split",
            PortId::of(input),
            vec![PortId::of(out_a), PortId::of(out_b)],
            TimeNs::from_us(100),
            TimeNs::ZERO,
            0,
            |p| {
                let v = p.as_u64().unwrap();
                vec![Payload::U64(v * 2), Payload::U64(v * 2 + 1)]
            },
        ));
        let col_a = net.add_process(Collector::new("ca", PortId::of(out_a), Some(5)));
        let col_b = net.add_process(Collector::new("cb", PortId::of(out_b), Some(5)));
        let mut engine = Engine::new(net);
        let out = engine.run_until(TimeNs::from_secs(5));
        assert!(matches!(
            out,
            RunOutcome::Completed { .. } | RunOutcome::Quiescent { .. }
        ));
        let a: Vec<u64> = engine
            .network()
            .process_as::<Collector>(col_a)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        let b: Vec<u64> = engine
            .network()
            .process_as::<Collector>(col_b)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        assert_eq!(a, vec![0, 2, 4, 6, 8]);
        assert_eq!(b, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fan_in_combines_in_input_order() {
        let mut net = Network::new();
        let in_a = net.add_channel(Fifo::new("a", 8));
        let in_b = net.add_channel(Fifo::new("b", 8));
        let out = net.add_channel(Fifo::new("out", 8));
        let model = PjdModel::periodic(TimeNs::from_ms(10));
        net.add_process(PjdSource::new(
            "sa",
            PortId::of(in_a),
            model,
            0,
            Some(4),
            |s| Payload::U64(s * 10),
        ));
        net.add_process(PjdSource::new(
            "sb",
            PortId::of(in_b),
            model,
            0,
            Some(4),
            Payload::U64,
        ));
        net.add_process(FanInStage::new(
            "merge",
            vec![PortId::of(in_a), PortId::of(in_b)],
            PortId::of(out),
            TimeNs::ZERO,
            TimeNs::ZERO,
            0,
            |ps| Payload::U64(ps.iter().map(|p| p.as_u64().unwrap()).sum()),
        ));
        let col = net.add_process(Collector::new("c", PortId::of(out), Some(4)));
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(5));
        let got: Vec<u64> = engine
            .network()
            .process_as::<Collector>(col)
            .unwrap()
            .tokens()
            .iter()
            .map(|t| t.payload.as_u64().unwrap())
            .collect();
        assert_eq!(got, vec![0, 11, 22, 33]);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_fan_out_rejected() {
        let _ = FanOutStage::new(
            "x",
            PortId::of(ChannelId(0)),
            vec![],
            TimeNs::ZERO,
            TimeNs::ZERO,
            0,
            |_| vec![],
        );
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_fan_in_rejected() {
        let _ = FanInStage::new(
            "x",
            vec![],
            PortId::of(ChannelId(0)),
            TimeNs::ZERO,
            TimeNs::ZERO,
            0,
            |_| Payload::Empty,
        );
    }
}
