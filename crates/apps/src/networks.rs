//! The three applications as fault-tolerant process networks (Fig. 2).
//!
//! Each application provides a payload generator (its workload) and a
//! [`ReplicaFactory`] wiring its critical subnetwork, so the `rtft-core`
//! builder can produce both the reference and the duplicated network. Per
//! the paper's experiments, the fault plan attaches to the replica's first
//! stage: a fail-stop halts consumption and (after the pipeline drains)
//! production.
//!
//! Virtual service times realise the Table 1 interface models: every
//! compute stage runs with a small *fixed* service time and a final
//! [`PjdShaper`] imposes the replica's ⟨P, J_i⟩ output model against the
//! nominal schedule (per-token service jitter would accumulate backlog and
//! violate the declared curves). The *data* path is real — tokens carry
//! actual bitstreams through the actual codecs.

use crate::adpcm::{decode_block, encode_block, AudioSource};
use crate::mjpeg;
use crate::profiles::AppProfile;
use crate::stages::{FanInStage, FanOutStage};
use crate::video::VideoSource;
use crate::{h264, profiles};
use rtft_core::{DuplicationConfig, FaultPlan, FaultyProcess, PayloadGenerator, ReplicaFactory};
use rtft_kpn::{Fifo, Network, NodeId, Payload, PjdShaper, PortId, Transform};
use rtft_rtc::{CurveAnalysisError, TimeNs};
use std::sync::Arc;

/// Number of distinct workload items pre-generated and cycled; keeps long
/// campaigns affordable while still pushing real bitstreams through the
/// codecs on every token.
pub const WORKLOAD_CYCLE: u64 = 4;

/// Wraps a pure payload transform with a digest-keyed memo.
///
/// Experiment campaigns cycle [`WORKLOAD_CYCLE`] distinct workload items
/// over thousands of tokens; the codecs are determinate, so identical
/// inputs yield identical outputs and recomputing them would only burn
/// wall-clock time without changing any virtual-time behaviour.
fn memoized(
    mut f: impl FnMut(&Payload) -> Payload + Send + 'static,
) -> impl FnMut(Payload) -> Payload + Send + 'static {
    let mut memo: std::collections::HashMap<u64, Payload> = std::collections::HashMap::new();
    move |p: Payload| {
        let key = p.digest();
        if let Some(hit) = memo.get(&key) {
            return hit.clone();
        }
        let out = f(&p);
        // Bound the memo so degenerate workloads cannot grow it unbounded.
        if memo.len() < 64 {
            memo.insert(key, out.clone());
        }
        out
    }
}

/// Which application a network should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// MJPEG decoder (split → transport halves → merge + decode).
    Mjpeg,
    /// ADPCM encoder + decoder pipeline.
    Adpcm,
    /// H.264-lite intra encoder.
    H264,
}

impl App {
    /// All three applications, in Table 1 order. Campaign drivers (and the
    /// fleet executor's mixed-tenant workloads) iterate this.
    pub const ALL: [App; 3] = [App::Mjpeg, App::Adpcm, App::H264];

    /// Short lower-case label for metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            App::Mjpeg => "mjpeg",
            App::Adpcm => "adpcm",
            App::H264 => "h264",
        }
    }

    /// The application's Table 1 profile.
    pub fn profile(self) -> AppProfile {
        match self {
            App::Mjpeg => profiles::mjpeg(),
            App::Adpcm => profiles::adpcm(),
            App::H264 => profiles::h264(),
        }
    }

    /// A payload generator cycling [`WORKLOAD_CYCLE`] pre-built workload
    /// items (encoded frames / PCM blocks / raw frames).
    pub fn payload_generator(self, seed: u64) -> PayloadGenerator {
        match self {
            App::Mjpeg => {
                let src = VideoSource::new(seed);
                let encoded: Vec<Payload> = (0..WORKLOAD_CYCLE)
                    .map(|n| Payload::from(mjpeg::encode(&src.frame(n), mjpeg::DEFAULT_QUALITY)))
                    .collect();
                Arc::new(move |n| encoded[(n % WORKLOAD_CYCLE) as usize].clone())
            }
            App::Adpcm => {
                let src = AudioSource::new(seed);
                let blocks: Vec<Payload> = (0..WORKLOAD_CYCLE)
                    .map(|n| Payload::from(src.block(n)))
                    .collect();
                Arc::new(move |n| blocks[(n % WORKLOAD_CYCLE) as usize].clone())
            }
            App::H264 => {
                let src = VideoSource::new(seed);
                let frames: Vec<Payload> = (0..WORKLOAD_CYCLE)
                    .map(|n| Payload::from(src.frame(n).pixels))
                    .collect();
                Arc::new(move |n| frames[(n % WORKLOAD_CYCLE) as usize].clone())
            }
        }
    }

    /// The replica factory for this application with the given per-replica
    /// stage seeds.
    pub fn replica_factory(self, seeds: [u64; 2]) -> AppReplicaFactory {
        let profile = self.profile();
        AppReplicaFactory {
            app: self,
            jitter: [
                profile.model.replica_out[0].jitter,
                profile.model.replica_out[1].jitter,
            ],
            seeds,
        }
    }

    /// Builds a ready-to-run [`DuplicationConfig`] for this application.
    ///
    /// # Errors
    ///
    /// Propagates [`CurveAnalysisError`] if the profile's rates diverge
    /// (cannot happen for the built-in profiles; checked in tests).
    pub fn duplication_config(
        self,
        workload_seed: u64,
        token_count: u64,
    ) -> Result<DuplicationConfig, CurveAnalysisError> {
        Ok(DuplicationConfig::from_model(self.profile().model)?
            .with_token_count(token_count)
            .with_payload(self.payload_generator(workload_seed)))
    }
}

/// [`ReplicaFactory`] for the three applications.
#[derive(Debug, Clone)]
pub struct AppReplicaFactory {
    app: App,
    jitter: [TimeNs; 2],
    seeds: [u64; 2],
}

impl AppReplicaFactory {
    /// Overrides the per-replica output jitters (used by the Table 3
    /// "timing variations minimized" campaign).
    pub fn with_jitter(mut self, jitter: [TimeNs; 2]) -> Self {
        self.jitter = jitter;
        self
    }

    /// The replica's shaper model: the profile's ⟨P, J_i⟩ with the given
    /// pipeline-latency schedule offset.
    fn out_model(&self, replica: usize, offset: TimeNs) -> rtft_rtc::PjdModel {
        let profile = self.app.profile();
        profile.model.replica_out[replica]
            .with_jitter(self.jitter[replica])
            .with_delay(offset)
    }
}

impl ReplicaFactory for AppReplicaFactory {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        let seed = self.seeds[replica];
        let tag = |stage: &str| format!("r{replica}.{stage}");
        match self.app {
            App::Mjpeg => {
                // splitstream → two byte-half transports → mergeframe+decode
                let half_a = net.add_channel(Fifo::new(tag("half_a"), 4));
                let half_b = net.add_channel(Fifo::new(tag("half_b"), 4));
                let merged_a = net.add_channel(Fifo::new(tag("ok_a"), 4));
                let merged_b = net.add_channel(Fifo::new(tag("ok_b"), 4));

                let split = FanOutStage::new(
                    tag("splitstream"),
                    input,
                    vec![PortId::of(half_a), PortId::of(half_b)],
                    TimeNs::from_ms(1),
                    TimeNs::ZERO,
                    seed,
                    |p| {
                        let data = p.as_bytes().expect("encoded frame bytes");
                        mjpeg::split_stream(data, 2)
                            .into_iter()
                            .map(Payload::from)
                            .collect()
                    },
                );
                let split_id = net.add_process(FaultyProcess::new(split, fault));

                // The parallel "decode" lanes validate and forward their
                // halves (entropy streams are not independently decodable;
                // real decode happens at the merge, per DESIGN.md).
                let lane = |name: String, from, to| {
                    Transform::new(
                        name,
                        from,
                        to,
                        TimeNs::from_ms(2),
                        TimeNs::ZERO,
                        seed,
                        |p| p,
                    )
                };
                let lane_a = net.add_process(lane(
                    tag("lane_a"),
                    PortId::of(half_a),
                    PortId::of(merged_a),
                ));
                let lane_b = net.add_process(lane(
                    tag("lane_b"),
                    PortId::of(half_b),
                    PortId::of(merged_b),
                ));

                let decoded = net.add_channel(Fifo::new(tag("decoded"), 4));
                let merge = FanInStage::new(
                    tag("mergeframe"),
                    vec![PortId::of(merged_a), PortId::of(merged_b)],
                    PortId::of(decoded),
                    TimeNs::from_ms(1),
                    TimeNs::ZERO,
                    seed.wrapping_add(1),
                    {
                        let mut memo: std::collections::HashMap<u64, Payload> =
                            std::collections::HashMap::new();
                        move |parts: Vec<Payload>| {
                            let key = parts
                                .iter()
                                .fold(0u64, |acc, p| acc.rotate_left(13) ^ p.digest());
                            if let Some(hit) = memo.get(&key) {
                                return hit.clone();
                            }
                            let bytes: Vec<Vec<u8>> = parts
                                .iter()
                                .map(|p| p.as_bytes().expect("half bytes").to_vec())
                                .collect();
                            let encoded = mjpeg::merge_parts(&bytes).expect("halves reassemble");
                            let frame = mjpeg::decode(&encoded).expect("replica decodes its input");
                            let out = Payload::from(frame.pixels);
                            if memo.len() < 64 {
                                memo.insert(key, out.clone());
                            }
                            out
                        }
                    },
                );
                let merge_id = net.add_process(merge);
                // Pipeline latency: split 1 + lane 2 + merge 1 + producer
                // jitter 2 + margin 1 = 7 ms schedule offset.
                let out_model = self.out_model(replica, TimeNs::from_ms(7));
                let shaper = net.add_process(PjdShaper::new(
                    tag("shaper"),
                    PortId::of(decoded),
                    output,
                    out_model,
                    seed.wrapping_add(0x5eed),
                ));
                vec![split_id, lane_a, lane_b, merge_id, shaper]
            }
            App::Adpcm => {
                // encoder → decoder (Fig. 2 bottom).
                let compressed = net.add_channel(Fifo::new(tag("compressed"), 4));
                let encoder = Transform::new(
                    tag("encoder"),
                    input,
                    PortId::of(compressed),
                    TimeNs::from_ms(1),
                    TimeNs::ZERO,
                    seed,
                    memoized(|p| Payload::from(encode_block(p.as_bytes().expect("pcm bytes")))),
                );
                let encoder_id = net.add_process(FaultyProcess::new(encoder, fault));
                let restored = net.add_channel(Fifo::new(tag("restored"), 4));
                let decoder = Transform::new(
                    tag("decoder"),
                    PortId::of(compressed),
                    PortId::of(restored),
                    TimeNs::from_ms(1),
                    TimeNs::ZERO,
                    seed.wrapping_add(1),
                    memoized(|p| Payload::from(decode_block(p.as_bytes().expect("adpcm bytes")))),
                );
                let decoder_id = net.add_process(decoder);
                // encoder 1 + decoder 1 + producer jitter 1 + margin 1 = 4 ms.
                let out_model = self.out_model(replica, TimeNs::from_ms(4));
                let shaper = net.add_process(PjdShaper::new(
                    tag("shaper"),
                    PortId::of(restored),
                    output,
                    out_model,
                    seed.wrapping_add(0x5eed),
                ));
                vec![encoder_id, decoder_id, shaper]
            }
            App::H264 => {
                let bitstream = net.add_channel(Fifo::new(tag("bitstream"), 4));
                let encoder = Transform::new(
                    tag("encoder"),
                    input,
                    PortId::of(bitstream),
                    TimeNs::from_ms(2),
                    TimeNs::ZERO,
                    seed,
                    memoized(|p| {
                        let raw = p.as_bytes().expect("raw frame bytes");
                        let frame = crate::video::Frame::from_pixels(
                            crate::video::FRAME_WIDTH,
                            crate::video::FRAME_HEIGHT,
                            raw.to_vec(),
                        );
                        Payload::from(h264::encode(&frame, h264::DEFAULT_QP))
                    }),
                );
                let encoder_id = net.add_process(FaultyProcess::new(encoder, fault));
                // encoder 2 + producer jitter 2 + margin 1 = 5 ms.
                let out_model = self.out_model(replica, TimeNs::from_ms(5));
                let shaper = net.add_process(PjdShaper::new(
                    tag("shaper"),
                    PortId::of(bitstream),
                    output,
                    out_model,
                    seed.wrapping_add(0x5eed),
                ));
                vec![encoder_id, shaper]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_core::{build_duplicated, build_reference};
    use rtft_kpn::Engine;

    fn run_app(app: App, tokens: u64, fault: Option<(usize, TimeNs)>) -> (usize, bool, bool) {
        let mut cfg = app.duplication_config(1, tokens).expect("bounded profile");
        if let Some((replica, at)) = fault {
            cfg = cfg.with_fault(replica, FaultPlan::fail_stop_at(at));
        }
        let factory = app.replica_factory([11, 22]);
        let (net, ids) = build_duplicated(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(60));
        let net = engine.network();
        let arrivals = ids.consumer_arrivals(net).len();
        let rep = ids.replicator_faults(net);
        let sel = ids.selector_faults(net);
        let flagged = |i: usize| rep[i].is_some() || sel[i].is_some();
        let (faulty_flagged, healthy_flagged) = match fault {
            Some((replica, _)) => (flagged(replica), flagged(1 - replica)),
            None => (false, flagged(0) || flagged(1)),
        };
        (arrivals, faulty_flagged, healthy_flagged)
    }

    #[test]
    fn adpcm_network_fault_free() {
        let (arrivals, _, _) = run_app(App::Adpcm, 60, None);
        assert_eq!(arrivals, 60);
    }

    #[test]
    fn adpcm_network_masks_fault() {
        let (arrivals, faulty, healthy) = run_app(App::Adpcm, 60, Some((1, TimeNs::from_ms(150))));
        assert_eq!(arrivals, 60, "all samples delivered despite the fault");
        assert!(faulty, "fault detected");
        assert!(!healthy, "healthy replica untouched");
    }

    #[test]
    fn mjpeg_network_fault_free() {
        let (arrivals, _, _) = run_app(App::Mjpeg, 24, None);
        assert_eq!(arrivals, 24);
    }

    #[test]
    fn mjpeg_network_masks_fault() {
        let (arrivals, faulty, healthy) = run_app(App::Mjpeg, 24, Some((0, TimeNs::from_ms(300))));
        assert_eq!(arrivals, 24);
        assert!(faulty);
        assert!(!healthy);
    }

    #[test]
    fn h264_network_fault_free() {
        let (arrivals, _, _) = run_app(App::H264, 12, None);
        assert_eq!(arrivals, 12);
    }

    #[test]
    fn h264_network_masks_fault() {
        let (arrivals, faulty, healthy) = run_app(App::H264, 12, Some((1, TimeNs::from_ms(150))));
        assert_eq!(arrivals, 12);
        assert!(faulty);
        assert!(!healthy);
    }

    #[test]
    fn duplicated_output_values_match_reference() {
        for app in [App::Adpcm, App::Mjpeg] {
            let cfg = app.duplication_config(2, 16).expect("bounded");
            let factory = app.replica_factory([5, 6]);
            let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
            let (ref_net, ref_ids) = build_reference(&cfg, &factory);
            let mut dup = Engine::new(dup_net);
            dup.run_until(TimeNs::from_secs(60));
            let mut reference = Engine::new(ref_net);
            reference.run_until(TimeNs::from_secs(60));
            let d: Vec<u64> = dup_ids
                .consumer_arrivals(dup.network())
                .iter()
                .map(|a| a.1)
                .collect();
            let r: Vec<u64> = ref_ids
                .consumer_arrivals(reference.network())
                .iter()
                .map(|a| a.1)
                .collect();
            assert_eq!(d, r, "{app:?}: Theorem 2 value equivalence");
        }
    }

    #[test]
    fn payload_generators_cycle_and_are_seeded() {
        for app in [App::Mjpeg, App::Adpcm, App::H264] {
            let g1 = app.payload_generator(1);
            let g2 = app.payload_generator(1);
            let g3 = app.payload_generator(2);
            assert_eq!(g1(0).digest(), g2(0).digest(), "{app:?} deterministic");
            assert_ne!(g1(0).digest(), g3(0).digest(), "{app:?} seeded");
            assert_eq!(
                g1(0).digest(),
                g1(WORKLOAD_CYCLE).digest(),
                "{app:?} cycles"
            );
            assert_ne!(
                g1(0).digest(),
                g1(1).digest(),
                "{app:?} varies within a cycle"
            );
        }
    }

    #[test]
    fn mjpeg_tokens_have_paper_sizes() {
        let gen = App::Mjpeg.payload_generator(1);
        let encoded = gen(0);
        assert!(
            (4_000..20_000).contains(&encoded.len()),
            "{}",
            encoded.len()
        );
        // And the decoded output token is exactly 76.8 KB — check through
        // a short run of the reference network.
        let cfg = App::Mjpeg.duplication_config(1, 4).unwrap();
        let factory = App::Mjpeg.replica_factory([5, 6]);
        let (net, _ids) = build_reference(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(10));
    }
}
