//! The IMA ADPCM audio codec (encoder + decoder).
//!
//! The paper's second application compresses 16-bit PCM 4:1 and expands it
//! back (§4.2: "The encoder performs a 4:1 compression, which is reverted
//! by the decoder"). This is the classic IMA/DVI ADPCM algorithm: each
//! 16-bit sample becomes a 4-bit code against an adaptive step-size table.
//! Tokens are 3 KB blocks, one every ~6.3 ms, exactly the paper's rates.

/// IMA ADPCM step-size table (89 entries, per the IMA spec).
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 4-bit code.
const INDEX_TABLE: [i8; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Codec state carried across samples (and across blocks, if desired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdpcmState {
    /// Last predicted sample.
    pub predictor: i32,
    /// Index into the step table.
    pub step_index: i32,
}

fn encode_sample(state: &mut AdpcmState, sample: i16) -> u8 {
    let step = STEP_TABLE[state.step_index as usize];
    let mut diff = sample as i32 - state.predictor;
    let mut code: u8 = 0;
    if diff < 0 {
        code |= 8;
        diff = -diff;
    }
    if diff >= step {
        code |= 4;
        diff -= step;
    }
    if diff >= step / 2 {
        code |= 2;
        diff -= step / 2;
    }
    if diff >= step / 4 {
        code |= 1;
    }
    decode_sample(state, code); // update state via the shared reconstruction
    code
}

fn decode_sample(state: &mut AdpcmState, code: u8) -> i16 {
    let step = STEP_TABLE[state.step_index as usize];
    let mut diff = step >> 3;
    if code & 1 != 0 {
        diff += step >> 2;
    }
    if code & 2 != 0 {
        diff += step >> 1;
    }
    if code & 4 != 0 {
        diff += step;
    }
    if code & 8 != 0 {
        state.predictor -= diff;
    } else {
        state.predictor += diff;
    }
    state.predictor = state.predictor.clamp(i16::MIN as i32, i16::MAX as i32);
    state.step_index = (state.step_index + INDEX_TABLE[code as usize] as i32).clamp(0, 88);
    state.predictor as i16
}

/// Encodes 16-bit PCM samples to 4-bit IMA ADPCM codes (two codes per
/// output byte, low nibble first). 4:1 compression by construction.
pub fn encode(samples: &[i16], state: &mut AdpcmState) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len().div_ceil(2));
    for pair in samples.chunks(2) {
        let lo = encode_sample(state, pair[0]) & 0x0F;
        let hi = if pair.len() > 1 {
            encode_sample(state, pair[1]) & 0x0F
        } else {
            0
        };
        out.push(lo | (hi << 4));
    }
    out
}

/// Decodes IMA ADPCM codes back to 16-bit PCM (`count` samples).
pub fn decode(codes: &[u8], count: usize, state: &mut AdpcmState) -> Vec<i16> {
    let mut out = Vec::with_capacity(count);
    'outer: for byte in codes {
        for code in [byte & 0x0F, byte >> 4] {
            if out.len() >= count {
                break 'outer;
            }
            out.push(decode_sample(state, code));
        }
    }
    out
}

/// Encodes one experiment block: PCM bytes (little-endian i16) in, ADPCM
/// bytes out, with fresh per-block state (blocks are independently
/// decodable, as the paper's token-oriented pipeline requires).
pub fn encode_block(pcm_bytes: &[u8]) -> Vec<u8> {
    let samples: Vec<i16> = pcm_bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect();
    let mut state = AdpcmState::default();
    encode(&samples, &mut state)
}

/// Decodes one experiment block produced by [`encode_block`] back to PCM
/// bytes.
pub fn decode_block(adpcm_bytes: &[u8]) -> Vec<u8> {
    let mut state = AdpcmState::default();
    let samples = decode(adpcm_bytes, adpcm_bytes.len() * 2, &mut state);
    let mut out = Vec::with_capacity(samples.len() * 2);
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Synthetic audio workload: a deterministic multi-tone 16-bit PCM signal.
/// Block `n` is a pure function of `(seed, n)`; the paper's token is a
/// 3 KB data sample.
#[derive(Debug, Clone, Copy)]
pub struct AudioSource {
    seed: u64,
}

/// Bytes per experiment audio block (the paper's 3 KB token).
pub const BLOCK_BYTES: usize = 3 * 1024;
/// 16-bit samples per block.
pub const SAMPLES_PER_BLOCK: usize = BLOCK_BYTES / 2;

impl AudioSource {
    /// A source with the given seed.
    pub fn new(seed: u64) -> Self {
        AudioSource { seed }
    }

    /// Generates block `n` as raw little-endian PCM bytes (3 KB).
    pub fn block(&self, n: u64) -> Vec<u8> {
        let base = n * SAMPLES_PER_BLOCK as u64;
        let f1 = 440.0 + (self.seed % 100) as f64;
        let f2 = 1337.0;
        let rate = 48_000.0;
        let mut out = Vec::with_capacity(BLOCK_BYTES);
        for i in 0..SAMPLES_PER_BLOCK as u64 {
            let t = (base + i) as f64 / rate;
            let v = 0.55 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                + 0.25 * (2.0 * std::f64::consts::PI * f2 * t).sin();
            let s = (v * 20_000.0) as i16;
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_to_one_compression() {
        let block = AudioSource::new(1).block(0);
        assert_eq!(block.len(), 3 * 1024);
        let encoded = encode_block(&block);
        assert_eq!(
            encoded.len(),
            block.len() / 4,
            "exact 4:1 as the paper states"
        );
        let decoded = decode_block(&encoded);
        assert_eq!(decoded.len(), block.len());
    }

    #[test]
    fn reconstruction_tracks_the_signal() {
        let block = AudioSource::new(2).block(3);
        let decoded = decode_block(&encode_block(&block));
        // ADPCM is lossy; require a sane SNR over the block.
        let orig: Vec<i16> = block
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        let rec: Vec<i16> = decoded
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        let signal: f64 = orig.iter().map(|s| (*s as f64).powi(2)).sum();
        let noise: f64 = orig
            .iter()
            .zip(rec.iter())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum();
        let snr_db = 10.0 * (signal / noise.max(1.0)).log10();
        assert!(snr_db > 15.0, "SNR {snr_db:.1} dB too low");
    }

    #[test]
    fn encoding_is_determinate() {
        let block = AudioSource::new(7).block(12);
        assert_eq!(encode_block(&block), encode_block(&block));
    }

    #[test]
    fn state_adapts_step_size() {
        let mut state = AdpcmState::default();
        // Loud signal drives the step index up.
        let loud: Vec<i16> = (0..64)
            .map(|i| if i % 2 == 0 { 20_000 } else { -20_000 })
            .collect();
        encode(&loud, &mut state);
        assert!(state.step_index > 40, "index {}", state.step_index);
    }

    #[test]
    fn silence_encodes_small_codes() {
        let silence = vec![0i16; 128];
        let mut state = AdpcmState::default();
        let codes = encode(&silence, &mut state);
        // All nibbles near zero magnitude.
        assert!(codes
            .iter()
            .all(|b| (b & 0x07) <= 1 && ((b >> 4) & 0x07) <= 1));
    }

    #[test]
    fn decoder_state_mirrors_encoder_state() {
        // The encoder updates its state via the decoder's reconstruction:
        // running both over the same stream yields identical states.
        let block = AudioSource::new(3).block(0);
        let samples: Vec<i16> = block
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        let mut enc_state = AdpcmState::default();
        let codes = encode(&samples, &mut enc_state);
        let mut dec_state = AdpcmState::default();
        let _ = decode(&codes, samples.len(), &mut dec_state);
        assert_eq!(enc_state, dec_state);
    }

    #[test]
    fn blocks_are_independent() {
        // Fresh state per block: decoding block n alone matches decoding it
        // after other blocks.
        let src = AudioSource::new(4);
        let b1 = src.block(1);
        let direct = decode_block(&encode_block(&b1));
        let _ = decode_block(&encode_block(&src.block(0)));
        let after_other = decode_block(&encode_block(&b1));
        assert_eq!(direct, after_other);
    }

    #[test]
    fn audio_source_is_deterministic_and_seeded() {
        assert_eq!(AudioSource::new(5).block(2), AudioSource::new(5).block(2));
        assert_ne!(AudioSource::new(5).block(2), AudioSource::new(6).block(2));
        assert_ne!(AudioSource::new(5).block(2), AudioSource::new(5).block(3));
    }

    #[test]
    fn odd_sample_count_handled() {
        let samples = vec![100i16; 7];
        let mut st = AdpcmState::default();
        let codes = encode(&samples, &mut st);
        assert_eq!(codes.len(), 4); // ceil(7/2)
        let mut st2 = AdpcmState::default();
        let rec = decode(&codes, 7, &mut st2);
        assert_eq!(rec.len(), 7);
    }
}
