//! The MJPEG-lite codec.
//!
//! A from-scratch motion-JPEG-style intra-frame codec: per 8×8 block a
//! forward DCT, JPEG-table quantisation, zig-zag scan, DPCM-coded DC and
//! run-length + Exp-Golomb coded AC coefficients. It is not bit-compatible
//! with JFIF (no external test vectors are available offline) but performs
//! the same computation per token, compresses the synthetic 320×240 frames
//! to roughly the paper's ~10 KB encoded size, and is **determinate**: the
//! encoded bytes are a pure function of the input frame, which is what the
//! paper's fault-tolerance framework requires of its replicas.

use crate::bitio::{BitReader, BitWriter, BitstreamExhausted};
use crate::dct::{dequantize_zigzag, fdct8x8, idct8x8, quantize_zigzag, scaled_qtable};
use crate::video::Frame;
use std::fmt;

/// Magic tag opening every MJPEG-lite bitstream.
const MAGIC: u16 = 0x4D4C; // "ML"

/// Default quality used by the experiments: compresses the synthetic video
/// to ≈10 KB per 320×240 frame, matching the paper's token size.
pub const DEFAULT_QUALITY: u8 = 50;

/// Decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MjpegError {
    /// Stream does not start with the MJPEG-lite magic.
    BadMagic,
    /// Width/height/quality fields are invalid.
    BadHeader,
    /// Bitstream ended prematurely.
    Truncated,
}

impl fmt::Display for MjpegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MjpegError::BadMagic => write!(f, "not an MJPEG-lite stream"),
            MjpegError::BadHeader => write!(f, "invalid MJPEG-lite header"),
            MjpegError::Truncated => write!(f, "truncated MJPEG-lite stream"),
        }
    }
}

impl std::error::Error for MjpegError {}

impl From<BitstreamExhausted> for MjpegError {
    fn from(_: BitstreamExhausted) -> Self {
        MjpegError::Truncated
    }
}

/// Encodes a frame at the given quality (1–100).
///
/// # Panics
///
/// Panics if `quality` is outside `1..=100` or the frame dimensions are
/// not multiples of 8.
pub fn encode(frame: &Frame, quality: u8) -> Vec<u8> {
    assert!(
        frame.width.is_multiple_of(8) && frame.height.is_multiple_of(8),
        "frame dimensions must be multiples of 8"
    );
    let qtable = scaled_qtable(quality);
    let mut w = BitWriter::new();
    w.put_bits(MAGIC as u64, 16);
    w.put_bits(frame.width as u64, 16);
    w.put_bits(frame.height as u64, 16);
    w.put_bits(quality as u64, 8);

    let mut prev_dc: i16 = 0;
    for by in (0..frame.height).step_by(8) {
        for bx in (0..frame.width).step_by(8) {
            let mut block = [0u8; 64];
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] = frame.at(bx + x, by + y);
                }
            }
            let q = quantize_zigzag(&fdct8x8(&block), &qtable);
            // DPCM-coded DC.
            w.put_se((q[0] - prev_dc) as i64);
            prev_dc = q[0];
            // RLE-coded AC: (run of zeros, level)*, terminated by EOB.
            let mut run = 0u64;
            for &level in &q[1..] {
                if level == 0 {
                    run += 1;
                } else {
                    w.put_bit(true); // symbol follows
                    w.put_ue(run);
                    w.put_se(level as i64);
                    run = 0;
                }
            }
            w.put_bit(false); // EOB
        }
    }
    w.into_bytes()
}

/// Decodes an MJPEG-lite stream back into a frame.
///
/// # Errors
///
/// [`MjpegError`] on malformed or truncated input.
pub fn decode(data: &[u8]) -> Result<Frame, MjpegError> {
    let mut r = BitReader::new(data);
    if r.get_bits(16)? as u16 != MAGIC {
        return Err(MjpegError::BadMagic);
    }
    let width = r.get_bits(16)? as usize;
    let height = r.get_bits(16)? as usize;
    let quality = r.get_bits(8)? as u8;
    if width == 0 || height == 0 || !width.is_multiple_of(8) || !height.is_multiple_of(8) {
        return Err(MjpegError::BadHeader);
    }
    if !(1..=100).contains(&quality) {
        return Err(MjpegError::BadHeader);
    }
    let qtable = scaled_qtable(quality);
    let mut pixels = vec![0u8; width * height];

    let mut prev_dc: i16 = 0;
    for by in (0..height).step_by(8) {
        for bx in (0..width).step_by(8) {
            let mut q = [0i16; 64];
            prev_dc = prev_dc.wrapping_add(r.get_se()? as i16);
            q[0] = prev_dc;
            let mut idx = 1usize;
            while r.get_bit()? {
                let run = r.get_ue()? as usize;
                let level = r.get_se()? as i16;
                idx += run;
                if idx >= 64 {
                    return Err(MjpegError::Truncated);
                }
                q[idx] = level;
                idx += 1;
            }
            let block = idct8x8(&dequantize_zigzag(&q, &qtable));
            for y in 0..8 {
                for x in 0..8 {
                    pixels[(by + y) * width + bx + x] = block[y * 8 + x];
                }
            }
        }
    }
    Ok(Frame::from_pixels(width, height, pixels))
}

/// Splits an encoded frame into `parts` roughly equal byte slices — the
/// `splitstream` stage of the paper's MJPEG pipeline (Fig. 2). Parts carry
/// a 4-byte length prefix so `merge_parts` can reassemble exactly.
pub fn split_stream(data: &[u8], parts: usize) -> Vec<Vec<u8>> {
    assert!(parts > 0, "need at least one part");
    let chunk = data.len().div_ceil(parts);
    (0..parts)
        .map(|i| {
            let start = (i * chunk).min(data.len());
            let end = ((i + 1) * chunk).min(data.len());
            let body = &data[start..end];
            let mut out = Vec::with_capacity(4 + body.len());
            out.extend_from_slice(&(body.len() as u32).to_le_bytes());
            out.extend_from_slice(body);
            out
        })
        .collect()
}

/// Reassembles the parts produced by [`split_stream`] — the `mergeframe`
/// counterpart stage.
///
/// # Errors
///
/// Returns [`MjpegError::Truncated`] if any part is shorter than its
/// length prefix promises.
pub fn merge_parts(parts: &[Vec<u8>]) -> Result<Vec<u8>, MjpegError> {
    let mut out = Vec::new();
    for p in parts {
        if p.len() < 4 {
            return Err(MjpegError::Truncated);
        }
        let len = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        if p.len() < 4 + len {
            return Err(MjpegError::Truncated);
        }
        out.extend_from_slice(&p[4..4 + len]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoSource;

    #[test]
    fn roundtrip_preserves_content_within_quantization_error() {
        let frame = VideoSource::new(1).frame(0);
        let encoded = encode(&frame, 75);
        let decoded = decode(&encoded).expect("valid stream");
        assert_eq!((decoded.width, decoded.height), (frame.width, frame.height));
        let mae = frame.mae(&decoded);
        assert!(mae < 6.0, "MAE {mae} too high for quality 75");
    }

    #[test]
    fn encoded_size_matches_paper_token() {
        // The paper's encoded frame token is ~10 KB for 320x240.
        let frame = VideoSource::new(1).frame(3);
        let encoded = encode(&frame, DEFAULT_QUALITY);
        assert!(
            (4_000..20_000).contains(&encoded.len()),
            "encoded size {} far from the paper's ~10 KB",
            encoded.len()
        );
    }

    #[test]
    fn encoding_is_determinate() {
        // Two replicas encode the same frame to identical bytes — the
        // foundation of the duplicate-pair logic.
        let frame = VideoSource::new(5).frame(11);
        assert_eq!(encode(&frame, 50), encode(&frame, 50));
    }

    #[test]
    fn quality_trades_size_for_error() {
        let frame = VideoSource::new(2).frame(0);
        let lo = encode(&frame, 20);
        let hi = encode(&frame, 90);
        assert!(hi.len() > lo.len(), "higher quality must cost bits");
        let mae_lo = frame.mae(&decode(&lo).unwrap());
        let mae_hi = frame.mae(&decode(&hi).unwrap());
        assert!(mae_hi < mae_lo, "higher quality must reduce error");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(&[0u8; 32]).unwrap_err(), MjpegError::BadMagic);
    }

    #[test]
    fn truncated_stream_rejected() {
        let frame = VideoSource::new(1).frame(0);
        let encoded = encode(&frame, 50);
        let err = decode(&encoded[..encoded.len() / 2]).unwrap_err();
        assert_eq!(err, MjpegError::Truncated);
    }

    #[test]
    fn split_merge_roundtrip() {
        let frame = VideoSource::new(1).frame(2);
        let encoded = encode(&frame, 50);
        for parts in [1usize, 2, 3, 7] {
            let split = split_stream(&encoded, parts);
            assert_eq!(split.len(), parts);
            let merged = merge_parts(&split).expect("merge");
            assert_eq!(merged, encoded, "parts={parts}");
        }
    }

    #[test]
    fn split_empty_stream() {
        let split = split_stream(&[], 2);
        assert_eq!(merge_parts(&split).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn merge_rejects_corrupt_part() {
        let bad = vec![vec![9, 0, 0, 0, 1]]; // promises 9 bytes, has 1
        assert_eq!(merge_parts(&bad).unwrap_err(), MjpegError::Truncated);
    }

    #[test]
    fn full_pipeline_split_decode_merge() {
        // The shape of the paper's decoder replica: split the encoded
        // stream, ship the halves, merge, decode.
        let frame = VideoSource::new(4).frame(9);
        let encoded = encode(&frame, 60);
        let halves = split_stream(&encoded, 2);
        let merged = merge_parts(&halves).unwrap();
        let decoded = decode(&merged).unwrap();
        assert!(frame.mae(&decoded) < 7.0);
        assert_eq!(decoded.pixels.len(), 76_800);
    }
}
