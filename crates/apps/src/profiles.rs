//! Table 1 — interface timing profiles of the three applications.
//!
//! The source scan of the paper's Table 1 is partially garbled; the tuples
//! below are reconstructed to be self-consistent with the *clean* numbers
//! of Table 2 (theoretical capacities and initial fills), as derived in
//! `DESIGN.md` §1 and verified analytically by the tests at the bottom of
//! this module.

use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::PjdModel;

/// A complete experiment profile for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Interface timing models (Table 1).
    pub model: DuplicationModel,
    /// Bytes per token entering the replicator.
    pub input_token_bytes: usize,
    /// Bytes per token entering the selector.
    pub output_token_bytes: usize,
    /// Tokens processed before fault injection in the paper (scaled down
    /// by the harness; see `EXPERIMENTS.md`).
    pub paper_fault_after_tokens: u64,
}

/// The MJPEG decoder profile: ~30 fps, 10 KB encoded in, 76.8 KB decoded
/// out, replica jitters 5 ms / 30 ms.
pub fn mjpeg() -> AppProfile {
    AppProfile {
        name: "MJPEG",
        model: DuplicationModel::symmetric(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 90.0),
            [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        ),
        input_token_bytes: 10 * 1024,
        output_token_bytes: 76_800,
        paper_fault_after_tokens: 18_000,
    }
}

/// The ADPCM application profile: 3 KB samples every ~6.3 ms, replica
/// jitters 1 ms / 16 ms.
pub fn adpcm() -> AppProfile {
    AppProfile {
        name: "ADPCM",
        model: DuplicationModel::symmetric(
            PjdModel::from_ms(6.3, 1.0, 0.0),
            PjdModel::from_ms(6.3, 1.0, 25.2),
            [
                PjdModel::from_ms(6.3, 1.0, 0.0),
                PjdModel::from_ms(6.3, 16.0, 0.0),
            ],
        ),
        input_token_bytes: 3 * 1024,
        output_token_bytes: 3 * 1024,
        paper_fault_after_tokens: 20_000,
    }
}

/// The H.264 encoder profile (results omitted from the paper for space;
/// reconstructed as a ~30 fps encoder with replica jitters 4 ms / 20 ms).
pub fn h264() -> AppProfile {
    AppProfile {
        name: "H.264",
        model: DuplicationModel::symmetric(
            PjdModel::from_ms(33.3, 2.0, 0.0),
            PjdModel::from_ms(33.3, 2.0, 100.0),
            [
                PjdModel::from_ms(33.3, 4.0, 0.0),
                PjdModel::from_ms(33.3, 20.0, 0.0),
            ],
        ),
        input_token_bytes: 76_800,
        output_token_bytes: 20 * 1024,
        paper_fault_after_tokens: 18_000,
    }
}

/// All three profiles.
pub fn all() -> [AppProfile; 3] {
    [mjpeg(), adpcm(), h264()]
}

/// The consumer delay expressed in whole producer periods (used by the
/// harness to reason about the initial-fill priming window).
pub fn priming_periods(p: &AppProfile) -> u64 {
    p.model.consumer.delay.as_ns() / p.model.producer.period.as_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_rtc::sizing::SizingReport;
    use rtft_rtc::TimeNs;

    #[test]
    fn mjpeg_profile_reproduces_table2_parameters() {
        let r = SizingReport::analyze(&mjpeg().model).expect("bounded");
        assert_eq!(r.replicator_capacity, [2, 3], "|R1|, |R2|");
        assert_eq!(r.selector_capacity, [4, 6], "|S1|, |S2|");
        assert_eq!(r.selector_initial_fill, [2, 3], "|S1|0, |S2|0");
    }

    #[test]
    fn adpcm_profile_reproduces_table2_parameters() {
        let r = SizingReport::analyze(&adpcm().model).expect("bounded");
        assert_eq!(r.replicator_capacity, [2, 4]);
        assert_eq!(r.selector_capacity, [4, 8]);
        assert_eq!(r.selector_initial_fill, [2, 4]);
    }

    #[test]
    fn h264_profile_is_bounded() {
        let r = SizingReport::analyze(&h264().model).expect("bounded");
        assert!(r.selector_threshold >= 2);
        assert!(r.selector_detection_bound > TimeNs::ZERO);
        assert!(r.selector_detection_bound < TimeNs::from_secs(1));
    }

    #[test]
    fn token_sizes_match_the_paper() {
        assert_eq!(mjpeg().input_token_bytes, 10_240, "~10 KB encoded frame");
        assert_eq!(mjpeg().output_token_bytes, 76_800, "76.8 KB decoded frame");
        assert_eq!(adpcm().input_token_bytes, 3 * 1024, "3 KB sample");
    }

    #[test]
    fn consumer_priming_covers_initial_fill() {
        for p in all() {
            let r = SizingReport::analyze(&p.model).expect("bounded");
            let worst_fill = r.selector_initial_fill[0].max(r.selector_initial_fill[1]);
            assert!(
                priming_periods(&p) >= worst_fill - 1,
                "{}: consumer delay primes only {} periods for fill {}",
                p.name,
                priming_periods(&p),
                worst_fill
            );
        }
    }

    #[test]
    fn detection_bounds_are_tens_to_hundreds_of_ms() {
        // Shape check against the paper: MJPEG bound O(100 ms), ADPCM
        // O(10 ms) — an order of magnitude apart, like Table 2's 180 vs 59.
        let m = SizingReport::analyze(&mjpeg().model).unwrap();
        let a = SizingReport::analyze(&adpcm().model).unwrap();
        assert!(m.selector_detection_bound > a.selector_detection_bound * 2);
        assert!(m.selector_detection_bound <= TimeNs::from_ms(300));
        assert!(a.selector_detection_bound <= TimeNs::from_ms(100));
    }
}
