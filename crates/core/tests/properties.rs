//! Property-style tests for the replicator/selector state machines and the
//! end-to-end fault-tolerance guarantees (Lemma 1, Theorem 2).
//!
//! Originally `proptest`-based; rewritten as deterministic seeded sweeps
//! driven by [`SplitMix64`] so the workspace builds offline with no
//! external dependencies.

use rtft_core::{
    build_duplicated, build_reference, DuplicationConfig, FaultPlan, JitterStageReplica,
    Replicator, ReplicatorConfig, Selector, SelectorConfig,
};
use rtft_kpn::{ChannelBehavior, Engine, Payload, ReadOutcome, SplitMix64, Token, WriteOutcome};
use rtft_rtc::sizing::DuplicationModel;
use rtft_rtc::{PjdModel, TimeNs};
use std::sync::Arc;

fn tok(seq: u64) -> Token {
    Token::new(seq, TimeNs::from_ms(seq), Payload::U64(seq))
}

fn mjpeg_like_model() -> DuplicationModel {
    DuplicationModel::symmetric(
        PjdModel::from_ms(30.0, 2.0, 0.0),
        PjdModel::from_ms(30.0, 2.0, 90.0),
        [
            PjdModel::from_ms(30.0, 5.0, 0.0),
            PjdModel::from_ms(30.0, 30.0, 0.0),
        ],
    )
}

/// The replicator delivers the exact producer sequence to every healthy
/// replica, regardless of how reads interleave.
#[test]
fn replicator_preserves_order_per_queue() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0001);
    for _case in 0..32 {
        let caps = [
            (1 + rng.next_inclusive(4)) as usize,
            (1 + rng.next_inclusive(4)) as usize,
        ];
        let n_ops = 1 + rng.next_inclusive(198);
        let mut r = Replicator::new("r", ReplicatorConfig::new(caps));
        let mut written = 0u64;
        let mut read_seq = [0u64; 2];
        for _ in 0..n_ops {
            match rng.next_inclusive(3) {
                0 | 1 => {
                    // Producer write (detection on: never blocks).
                    let out = r.try_write(0, tok(written), TimeNs::from_ms(written));
                    assert!(!matches!(out, WriteOutcome::Blocked(_)));
                    written += 1;
                }
                i @ (2 | 3) => {
                    let iface = (i - 2) as usize;
                    if let ReadOutcome::Token(t) = r.try_read(iface, TimeNs::ZERO) {
                        assert_eq!(t.seq, read_seq[iface], "queue {iface} out of order");
                        read_seq[iface] += 1;
                    }
                }
                _ => unreachable!(),
            }
        }
        // Every token read was a prefix of what was written.
        assert!(read_seq[0] <= written && read_seq[1] <= written);
    }
}

/// Lemma 1 at the state-machine level: operations on one selector write
/// interface never change the other interface's space counter.
#[test]
fn lemma1_space_isolation() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0002);
    for _case in 0..32 {
        let caps = [
            (1 + rng.next_inclusive(6)) as usize,
            (1 + rng.next_inclusive(6)) as usize,
        ];
        let n_ops = 1 + rng.next_inclusive(98);
        let mut s = Selector::new("s", SelectorConfig::without_detection(caps));
        let mut seq = [0u64; 2];
        for _ in 0..n_ops {
            let iface = rng.next_inclusive(1) as usize;
            let other = 1 - iface;
            let space_other_before = s.space(other);
            let _ = s.try_write(iface, tok(seq[iface]), TimeNs::ZERO);
            seq[iface] += 1;
            assert_eq!(
                s.space(other),
                space_other_before,
                "write on iface {iface} changed space of iface {other}"
            );
        }
    }
}

/// The selector delivers each duplicate pair exactly once, in order,
/// for any healthy interleaving of the two replicas (skew bounded by
/// the queue capacities).
#[test]
fn selector_delivers_each_pair_once() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0003);
    for _case in 0..32 {
        let caps = [
            (2 + rng.next_inclusive(5)) as usize,
            (2 + rng.next_inclusive(5)) as usize,
        ];
        let n_ops = 1 + rng.next_inclusive(298);
        let mut s = Selector::new("s", SelectorConfig::without_detection(caps));
        let mut next_write = [0u64; 2];
        let mut delivered = Vec::new();
        let total = 40u64;
        for _ in 0..n_ops {
            match rng.next_inclusive(2) {
                i @ (0 | 1) => {
                    let iface = i as usize;
                    if next_write[iface] < total {
                        match s.try_write(iface, tok(next_write[iface]), TimeNs::ZERO) {
                            WriteOutcome::Blocked(_) => {}
                            _ => next_write[iface] += 1,
                        }
                    }
                }
                2 => {
                    if let ReadOutcome::Token(t) = s.try_read(0, TimeNs::ZERO) {
                        delivered.push(t.seq);
                    }
                }
                _ => unreachable!(),
            }
        }
        // Drain.
        while let ReadOutcome::Token(t) = s.try_read(0, TimeNs::ZERO) {
            delivered.push(t.seq);
        }
        let expected: Vec<u64> = (0..delivered.len() as u64).collect();
        assert_eq!(
            delivered, expected,
            "pairs must appear exactly once, in order"
        );
        // Everything both replicas completed was delivered.
        let both_done = next_write[0].min(next_write[1]);
        assert!(
            delivered.len() as u64 >= both_done,
            "delivered {} < completed pairs {}",
            delivered.len(),
            both_done
        );
    }
}

/// End-to-end Theorem 2: for random seeds and a random fail-stop time
/// in either replica, the duplicated network delivers exactly the
/// reference value sequence.
#[test]
fn theorem2_value_equivalence_under_fault() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0004);
    for _case in 0..8 {
        let seed_p = rng.next_inclusive(999);
        let seed_r1 = rng.next_inclusive(999);
        let seed_r2 = rng.next_inclusive(999);
        let faulty = rng.next_inclusive(1) as usize;
        let fault_ms = 200 + rng.next_inclusive(1_799);

        let tokens = 100u64;
        let cfg = DuplicationConfig::from_model(mjpeg_like_model())
            .expect("bounded")
            .with_token_count(tokens)
            .with_seeds(seed_p, seed_p + 1)
            .with_payload(Arc::new(|seq| Payload::U64(seq.wrapping_mul(0x9e37_79b9))))
            .with_fault(faulty, FaultPlan::fail_stop_at(TimeNs::from_ms(fault_ms)));
        let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([seed_r1, seed_r2]);

        let (dup_net, dup_ids) = build_duplicated(&cfg, &factory);
        let (ref_net, ref_ids) = build_reference(&cfg, &factory);
        let mut dup = Engine::new(dup_net);
        dup.run_until(TimeNs::from_secs(20));
        let mut reference = Engine::new(ref_net);
        reference.run_until(TimeNs::from_secs(20));

        let d: Vec<u64> = dup_ids
            .consumer_arrivals(dup.network())
            .iter()
            .map(|a| a.1)
            .collect();
        let r: Vec<u64> = ref_ids
            .consumer_arrivals(reference.network())
            .iter()
            .map(|a| a.1)
            .collect();
        assert_eq!(
            d.len() as u64,
            tokens,
            "fault at {fault_ms}ms in replica {faulty}"
        );
        assert_eq!(d, r);

        // The healthy replica is never flagged.
        let healthy = 1 - faulty;
        let rep = dup_ids.replicator_faults(dup.network());
        let sel = dup_ids.selector_faults(dup.network());
        assert!(
            rep[healthy].is_none(),
            "healthy replica flagged at replicator"
        );
        assert!(
            sel[healthy].is_none(),
            "healthy replica flagged at selector"
        );
    }
}

/// No false positives: fault-free runs never latch a fault, for any
/// seeds (eq. (5) guarantee).
#[test]
fn no_false_positives_fault_free() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0005);
    for _case in 0..8 {
        let seed_p = rng.next_inclusive(499);
        let seed_r1 = rng.next_inclusive(499);
        let seed_r2 = rng.next_inclusive(499);
        let cfg = DuplicationConfig::from_model(mjpeg_like_model())
            .expect("bounded")
            .with_token_count(80)
            .with_seeds(seed_p, seed_p + 7);
        let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([seed_r1, seed_r2]);
        let (net, ids) = build_duplicated(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(20));
        assert_eq!(ids.replicator_faults(engine.network()), [None, None]);
        assert_eq!(ids.selector_faults(engine.network()), [None, None]);
        assert_eq!(ids.consumer_arrivals(engine.network()).len(), 80);
    }
}

/// Observed queue fills never exceed the analytic capacities (the
/// "Max. Observed fill ≤ Theoretical Capacity" claim of Table 2),
/// fault-free, for any seeds.
#[test]
fn observed_fill_bounded_by_capacity() {
    let mut rng = SplitMix64::seed_from_u64(0xc0de_0006);
    for _case in 0..8 {
        let seed = rng.next_inclusive(499);
        let cfg = DuplicationConfig::from_model(mjpeg_like_model())
            .expect("bounded")
            .with_token_count(80)
            .with_seeds(seed, seed + 13);
        let factory = JitterStageReplica::from_model(&cfg.model).with_seeds([seed + 1, seed + 2]);
        let (net, ids) = build_duplicated(&cfg, &factory);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(20));
        let net = engine.network();
        for i in 0..2 {
            assert!(
                net.channel(ids.replicator).max_fill(i)
                    <= cfg.sizing.replicator_capacity[i] as usize
            );
        }
        assert!(net.channel(ids.selector).max_fill(0) <= cfg.sizing.selector_queue_size() as usize);
    }
}

/// Deterministic regression for the §1.1 motivational example: with
/// detection disabled, a fail-stopped replica deadlocks the whole network;
/// with detection enabled it does not.
#[test]
fn motivational_example_deadlock_vs_detection() {
    let base = DuplicationConfig::from_model(mjpeg_like_model())
        .expect("bounded")
        .with_token_count(100)
        .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(1)));
    let factory = JitterStageReplica::from_model(&base.model).with_seeds([3, 4]);

    // Detection on: all tokens delivered.
    let (net, ids) = build_duplicated(&base, &factory);
    let mut engine = Engine::new(net);
    engine.run_until(TimeNs::from_secs(20));
    assert_eq!(ids.consumer_arrivals(engine.network()).len(), 100);

    // Detection off (bare §3.1 rules): the producer blocks on the dead
    // replica's full queue and the consumer starves — far fewer tokens.
    let mut ablated = base.clone();
    ablated.sizing = base.sizing; // same sizing
    let (mut net2, ids2) = {
        // Build with detection disabled by swapping the channels.
        let (net2, ids2) = build_duplicated(&ablated, &factory);
        (net2, ids2)
    };
    // Replace the channels' configs: rebuild via raw channel swap is not
    // supported, so emulate by disabling detection through a dedicated
    // build path: write directly over the channel objects.
    {
        let repl = net2
            .channel_mut(ids2.replicator)
            .as_any_mut()
            .downcast_mut::<Replicator>()
            .expect("replicator");
        *repl = Replicator::new(
            "replicator",
            ReplicatorConfig::new([
                base.sizing.replicator_capacity[0] as usize,
                base.sizing.replicator_capacity[1] as usize,
            ])
            .without_detection(),
        );
        let sel = net2
            .channel_mut(ids2.selector)
            .as_any_mut()
            .downcast_mut::<Selector>()
            .expect("selector");
        *sel = Selector::new(
            "selector",
            SelectorConfig::without_detection([
                base.sizing.selector_capacity[0] as usize,
                base.sizing.selector_capacity[1] as usize,
            ]),
        );
    }
    let mut engine2 = Engine::new(net2);
    engine2.run_until(TimeNs::from_secs(20));
    let delivered = ids2.consumer_arrivals(engine2.network()).len();
    assert!(
        delivered < 100,
        "without detection the network must starve, yet delivered {delivered}"
    );
}
