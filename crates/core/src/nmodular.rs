//! N-replica generalisation: tolerating up to `n − 1` timing faults.
//!
//! The paper restricts its presentation to two replicas but states that
//! "a more general setup for tolerating up to n timing faults can be
//! easily constructed using the principles outlined in this paper" (§1).
//! This module is that construction:
//!
//! * [`NReplicator`] — one write interface, `n` read interfaces, one
//!   bounded queue per replica, the §3.3 overflow latch per queue and a
//!   divergence detector over consumption counts;
//! * [`NSelector`] — `n` write interfaces, one physical queue. Interface
//!   `i` supplies the *first token of duplicate group `k`* iff no peer has
//!   delivered `k` yet, decided on received-token counters (the
//!   capacity-normalised form of the paper's space comparison, see
//!   `DESIGN.md` §5); late group members are discarded. A replica whose
//!   count falls `D` behind the front-runner — or whose `space` exceeds
//!   its capacity plus slack — is latched faulty, and latched interfaces'
//!   writes are swallowed so limping replicas cannot block.
//!
//! All detection remains counter-based: no clocks at runtime. Up to
//! `n − 1` replicas may be latched; the front-runner is never latched, so
//! one healthy replica always survives and the consumer stream is
//! uninterrupted (the tests inject two staggered fail-stops into a
//! triplicated network).

use crate::arbitration::{
    ArbFault, ArbFaultCause, Arbiter, ArbiterLedger, FirstOfGroup, PolicySelector,
};
use crate::fault::FaultPlan;
use crate::replicator::{FaultRecord, ReplicatorFaultCause};
use crate::selector::{SelectorFaultCause, SelectorFaultRecord};
use rtft_kpn::{
    ChannelBehavior, ChannelId, Network, NodeId, PjdSink, PjdSource, PortId, ReadOutcome, Token,
    WriteOutcome,
};
use rtft_rtc::sizing;
use rtft_rtc::{detection, CurveAnalysisError, PjdModel, TimeNs};
use std::any::Any;
use std::collections::VecDeque;

/// Interface timing models of an `n`-replica duplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NModularModel {
    /// Producer output model.
    pub producer: PjdModel,
    /// Consumer input model.
    pub consumer: PjdModel,
    /// One interface model per replica (used for both consumption and
    /// production, as in the paper's experiments).
    pub replicas: Vec<PjdModel>,
}

/// The §3.4 analysis generalised to `n` replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NSizingReport {
    /// Per-replica replicator queue capacity (eq. (3)).
    pub replicator_capacity: Vec<u64>,
    /// Per-replica selector virtual-queue capacity.
    pub selector_capacity: Vec<u64>,
    /// Divergence threshold `D`: eq. (5) maximised over all ordered pairs.
    pub threshold: u64,
    /// Worst-case fail-stop detection bound (pairwise worst case).
    pub detection_bound: TimeNs,
}

impl NSizingReport {
    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CurveAnalysisError`] if any rate pairing diverges.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two replicas are given.
    pub fn analyze(model: &NModularModel) -> Result<Self, CurveAnalysisError> {
        assert!(
            model.replicas.len() >= 2,
            "n-modular redundancy needs at least two replicas"
        );
        let mut replicator_capacity = Vec::new();
        let mut selector_capacity = Vec::new();
        for r in &model.replicas {
            replicator_capacity.push(sizing::fifo_capacity(&model.producer, r)?);
            selector_capacity.push(sizing::selector_capacity(&model.consumer, r)?);
        }
        let mut threshold = 0;
        for (i, a) in model.replicas.iter().enumerate() {
            for (j, b) in model.replicas.iter().enumerate() {
                if i != j {
                    threshold = threshold.max(sizing::divergence_threshold(a, b)?);
                }
            }
        }
        let mut detection_bound = TimeNs::ZERO;
        for r in &model.replicas {
            detection_bound =
                detection_bound.max(detection::fail_stop_detection_bound(&[*r, *r], threshold));
        }
        Ok(NSizingReport {
            replicator_capacity,
            selector_capacity,
            threshold,
            detection_bound,
        })
    }

    /// Number of replicas covered.
    pub fn replica_count(&self) -> usize {
        self.replicator_capacity.len()
    }
}

/// N-way replicator channel.
#[derive(Debug)]
pub struct NReplicator {
    name: String,
    queues: Vec<VecDeque<Token>>,
    capacity: Vec<usize>,
    max_fill: Vec<usize>,
    consumed: Vec<u64>,
    writes: u64,
    fault: Vec<Option<FaultRecord>>,
    divergence_threshold: Option<u64>,
}

impl NReplicator {
    /// Creates an n-way replicator with the given per-replica capacities.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two queues or any zero capacity.
    pub fn new(
        name: impl Into<String>,
        capacity: Vec<usize>,
        divergence_threshold: Option<u64>,
    ) -> Self {
        assert!(capacity.len() >= 2, "need at least two replicas");
        assert!(
            capacity.iter().all(|c| *c > 0),
            "capacities must be positive"
        );
        let n = capacity.len();
        NReplicator {
            name: name.into(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            capacity,
            max_fill: vec![0; n],
            consumed: vec![0; n],
            writes: 0,
            fault: vec![None; n],
            divergence_threshold,
        }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fault record of replica `i`, if latched.
    pub fn fault(&self, i: usize) -> Option<FaultRecord> {
        self.fault[i]
    }

    /// Number of replicas still healthy.
    pub fn healthy_count(&self) -> usize {
        self.fault.iter().filter(|f| f.is_none()).count()
    }

    /// Indices of the replicas currently latched faulty, ascending — the
    /// enumeration counterpart of probing [`NReplicator::fault`] in a
    /// loop. The fleet supervisor uses this to decide which replicas a
    /// replacement run must re-spawn.
    pub fn faulty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.fault
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| i))
    }

    fn check_divergence(&mut self, now: TimeNs) {
        let Some(d) = self.divergence_threshold else {
            return;
        };
        let max = self
            .consumed
            .iter()
            .zip(&self.fault)
            .filter(|(_, f)| f.is_none())
            .map(|(c, _)| *c)
            .max()
            .unwrap_or(0);
        for i in 0..self.queues.len() {
            if self.fault[i].is_none() && self.healthy_count() > 1 && max - self.consumed[i] >= d {
                self.fault[i] = Some(FaultRecord {
                    at: now,
                    cause: ReplicatorFaultCause::Divergence,
                });
            }
        }
    }
}

impl ChannelBehavior for NReplicator {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0, "n-replicator has a single write interface");
        // Overflow latch per full healthy queue (keep the front-runner:
        // never latch the last healthy replica via overflow either — a
        // totally blocked system is reported by the queue staying full).
        for i in 0..self.queues.len() {
            if self.fault[i].is_none()
                && self.queues[i].len() >= self.capacity[i]
                && self.healthy_count() > 1
            {
                self.fault[i] = Some(FaultRecord {
                    at: now,
                    cause: ReplicatorFaultCause::Overflow,
                });
            }
        }
        let mut delivered = false;
        for i in 0..self.queues.len() {
            if self.fault[i].is_none() && self.queues[i].len() < self.capacity[i] {
                self.queues[i].push_back(token.clone());
                self.max_fill[i] = self.max_fill[i].max(self.queues[i].len());
                delivered = true;
            }
        }
        self.writes += 1;
        if delivered {
            WriteOutcome::Accepted
        } else {
            WriteOutcome::Blocked(token)
        }
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        match self.queues[iface].pop_front() {
            Some(t) => {
                self.consumed[iface] += 1;
                self.check_divergence(now);
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn write_ifaces(&self) -> usize {
        1
    }

    fn read_ifaces(&self) -> usize {
        self.queues.len()
    }

    fn fill(&self, iface: usize) -> usize {
        self.queues[iface].len()
    }

    fn capacity(&self, iface: usize) -> usize {
        self.capacity[iface]
    }

    fn max_fill(&self, iface: usize) -> usize {
        self.max_fill[iface]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Arbiter for NReplicator {
    fn arbiter_name(&self) -> &str {
        self.name()
    }

    fn replica_ifaces(&self) -> usize {
        self.capacity.len()
    }

    fn latched(&self, i: usize) -> Option<ArbFault> {
        self.fault[i].map(|f| ArbFault {
            at: f.at,
            cause: match f.cause {
                ReplicatorFaultCause::Overflow => ArbFaultCause::Stall,
                ReplicatorFaultCause::Divergence => ArbFaultCause::Divergence,
            },
            group: None,
        })
    }
}

/// N-way selector channel: the paper's timing arbitration
/// ([`FirstOfGroup`]) over the shared [`ArbiterLedger`]. Interface `i`
/// supplies the first token of duplicate group `k` iff no healthy peer has
/// delivered `k` yet; late group members are discarded; the eq. (5)
/// divergence and §3.3 stall rules latch a lagging replica.
///
/// [`ArbiterLedger`]: crate::arbitration::ArbiterLedger
pub type NSelector = PolicySelector<FirstOfGroup>;

impl NSelector {
    /// Creates an n-way selector with per-replica virtual capacities and
    /// divergence threshold `d` (stall slack `d − 1`).
    ///
    /// # Panics
    ///
    /// Panics on fewer than two interfaces, a zero capacity, or `d == 0`.
    pub fn new(name: impl Into<String>, capacity: Vec<usize>, d: u64) -> Self {
        assert!(capacity.len() >= 2, "need at least two replicas");
        PolicySelector::from_parts(ArbiterLedger::new(name, capacity, d), FirstOfGroup)
    }

    /// Fault record of replica `i`, if latched.
    pub fn fault(&self, i: usize) -> Option<SelectorFaultRecord> {
        self.arb_fault(i).map(|f| SelectorFaultRecord {
            at: f.at,
            cause: match f.cause {
                ArbFaultCause::Divergence => SelectorFaultCause::Divergence,
                ArbFaultCause::Stall => SelectorFaultCause::Stall,
                ArbFaultCause::ValueMismatch => {
                    unreachable!("timing arbitration never inspects values")
                }
            },
        })
    }
}

/// The n-replica counterpart of
/// [`JitterStageReplica`](crate::JitterStageReplica): each replica is a
/// fixed-service transform stage followed by a [`PjdShaper`] imposing that
/// replica's ⟨P, J⟩ output model. Works for any replica count, so the
/// fleet executor uses it for synthetic n-modular jobs.
///
/// [`PjdShaper`]: rtft_kpn::PjdShaper
#[derive(Debug, Clone)]
pub struct NJitterStageReplica {
    /// Fixed per-token service time of each compute stage.
    pub service: TimeNs,
    /// Per-replica output interface models (without the schedule offset).
    pub out_models: Vec<PjdModel>,
    /// Shaper schedule offset; must cover `service` plus producer jitter.
    pub offset: TimeNs,
    /// Base RNG seed; replica `i` uses `seed_base + i`.
    pub seed_base: u64,
}

impl NJitterStageReplica {
    /// Builds the factory from an n-modular model: service one tenth of
    /// the producer period, offset `service + producer jitter + 1 ms`.
    pub fn from_model(model: &NModularModel) -> Self {
        let service = model.producer.period / 10;
        let offset = service + model.producer.jitter + TimeNs::from_ms(1);
        NJitterStageReplica {
            service,
            out_models: model.replicas.clone(),
            offset,
            seed_base: 0,
        }
    }

    /// Replaces the base seed.
    pub fn with_seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }
}

impl crate::ReplicaFactory for NJitterStageReplica {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        let internal = net.add_channel(rtft_kpn::Fifo::new(format!("r{replica}.shape"), 4));
        let seed = self.seed_base.wrapping_add(replica as u64);
        let stage = rtft_kpn::Transform::new(
            format!("replica{replica}.stage"),
            input,
            PortId::of(internal),
            self.service,
            TimeNs::ZERO,
            seed,
            |p| p,
        );
        let stage_id = net.add_process(crate::FaultyProcess::new(stage, fault));
        let shaper = rtft_kpn::PjdShaper::new(
            format!("replica{replica}.shaper"),
            PortId::of(internal),
            output,
            self.out_models[replica].with_delay(self.offset),
            seed.wrapping_add(0x5eed),
        );
        let shaper_id = net.add_process(shaper);
        vec![stage_id, shaper_id]
    }
}

/// Ids of a built n-modular network.
#[derive(Debug, Clone)]
pub struct NModularIds {
    /// The n-way replicator.
    pub replicator: ChannelId,
    /// The n-way selector.
    pub selector: ChannelId,
    /// The producer process.
    pub producer: NodeId,
    /// The consumer process.
    pub consumer: NodeId,
    /// Per-replica process ids.
    pub replicas: Vec<Vec<NodeId>>,
}

impl NModularIds {
    /// Consumer arrivals after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected sink.
    pub fn consumer_arrivals<'a>(&self, net: &'a Network) -> &'a [(TimeNs, u64)] {
        net.process_as::<PjdSink>(self.consumer)
            .expect("consumer sink")
            .arrivals()
    }
}

/// Builds an n-modular network: producer → n-replicator → `n` replicas →
/// n-selector → consumer, with a fault plan per replica.
///
/// # Panics
///
/// Panics if `faults.len() != model.replicas.len()` or fewer than two
/// replicas are configured.
pub fn build_n_modular(
    model: &NModularModel,
    sizing: &NSizingReport,
    token_count: u64,
    seeds: (u64, u64),
    payload: crate::PayloadGenerator,
    factory: &dyn crate::ReplicaFactory,
    faults: &[FaultPlan],
) -> (Network, NModularIds) {
    let n = model.replicas.len();
    assert!(n >= 2, "n-modular redundancy needs at least two replicas");
    assert_eq!(faults.len(), n, "one fault plan per replica");

    let mut net = Network::new();
    let replicator = net.add_channel(NReplicator::new(
        "n-replicator",
        sizing
            .replicator_capacity
            .iter()
            .map(|c| *c as usize)
            .collect(),
        Some(sizing.threshold),
    ));
    let selector = net.add_channel(NSelector::new(
        "n-selector",
        sizing
            .selector_capacity
            .iter()
            .map(|c| *c as usize)
            .collect(),
        sizing.threshold,
    ));

    let gen = payload;
    let producer = net.add_process(PjdSource::new(
        "producer",
        PortId::of(replicator),
        model.producer,
        seeds.0,
        Some(token_count),
        move |seq| gen(seq),
    ));

    let replicas: Vec<Vec<NodeId>> = (0..n)
        .map(|i| {
            factory.build(
                &mut net,
                PortId::iface(replicator, i),
                PortId::iface(selector, i),
                i,
                faults[i],
            )
        })
        .collect();

    let consumer = net.add_process(PjdSink::new(
        "consumer",
        PortId::of(selector),
        model.consumer,
        seeds.1,
        Some(token_count),
    ));

    (
        net,
        NModularIds {
            replicator,
            selector,
            producer,
            consumer,
            replicas,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ReplicaFactory;
    use crate::fault::FaultPlan;
    use rtft_kpn::{Engine, Fifo, Payload, PjdShaper, Transform};
    use std::sync::Arc;

    /// A shaper-based replica factory for arbitrary replica counts.
    struct TriReplica {
        models: Vec<PjdModel>,
    }

    impl ReplicaFactory for TriReplica {
        fn build(
            &self,
            net: &mut Network,
            input: PortId,
            output: PortId,
            replica: usize,
            fault: FaultPlan,
        ) -> Vec<NodeId> {
            let internal = net.add_channel(Fifo::new(format!("r{replica}.mid"), 4));
            let stage = Transform::new(
                format!("r{replica}.stage"),
                input,
                PortId::of(internal),
                TimeNs::from_ms(2),
                TimeNs::ZERO,
                replica as u64,
                |p| p,
            );
            let stage_id = net.add_process(crate::FaultyProcess::new(stage, fault));
            let model = self.models[replica].with_delay(TimeNs::from_ms(5));
            let shaper = net.add_process(PjdShaper::new(
                format!("r{replica}.shaper"),
                PortId::of(internal),
                output,
                model,
                0x5eed + replica as u64,
            ));
            vec![stage_id, shaper]
        }
    }

    fn tri_model() -> NModularModel {
        NModularModel {
            producer: PjdModel::from_ms(30.0, 2.0, 0.0),
            consumer: PjdModel::from_ms(30.0, 2.0, 120.0),
            replicas: vec![
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 15.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        }
    }

    fn run_tri(faults: Vec<FaultPlan>) -> (usize, Vec<bool>) {
        let model = tri_model();
        let sizing = NSizingReport::analyze(&model).expect("bounded");
        let factory = TriReplica {
            models: model.replicas.clone(),
        };
        let tokens = 150u64;
        let (net, ids) = build_n_modular(
            &model,
            &sizing,
            tokens,
            (1, 2),
            Arc::new(|seq| Payload::U64(seq.wrapping_mul(0x9e37_79b9))),
            &factory,
            &faults,
        );
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let net = engine.network();
        let arrivals = ids.consumer_arrivals(net).len();
        let rep = net
            .channel_as::<NReplicator>(ids.replicator)
            .expect("replicator");
        let sel = net.channel_as::<NSelector>(ids.selector).expect("selector");
        let flagged = (0..3)
            .map(|i| rep.fault(i).is_some() || sel.fault(i).is_some())
            .collect();
        (arrivals, flagged)
    }

    #[test]
    fn sizing_generalizes_pairwise() {
        use rtft_rtc::sizing::SizingReport;
        let model = tri_model();
        let s = NSizingReport::analyze(&model).expect("bounded");
        assert_eq!(s.replica_count(), 3);
        // The 2-replica analysis on the extreme pair lower-bounds the
        // 3-replica threshold.
        let pair = SizingReport::analyze(&rtft_rtc::sizing::DuplicationModel::symmetric(
            model.producer,
            model.consumer,
            [model.replicas[0], model.replicas[2]],
        ))
        .expect("bounded");
        assert!(s.threshold >= pair.selector_threshold);
        assert!(s.detection_bound >= pair.selector_detection_bound);
    }

    #[test]
    fn fault_free_triplication_delivers_everything_once() {
        let (arrivals, flagged) = run_tri(vec![FaultPlan::healthy(); 3]);
        assert_eq!(arrivals, 150);
        assert_eq!(flagged, vec![false, false, false], "no false positives");
    }

    #[test]
    fn single_fault_in_triplicated_network() {
        let (arrivals, flagged) = run_tri(vec![
            FaultPlan::fail_stop_at(TimeNs::from_secs(2)),
            FaultPlan::healthy(),
            FaultPlan::healthy(),
        ]);
        assert_eq!(arrivals, 150);
        assert_eq!(flagged, vec![true, false, false]);
    }

    #[test]
    fn two_staggered_faults_are_tolerated() {
        // The headline of the generalisation: n = 3 tolerates two faults.
        let (arrivals, flagged) = run_tri(vec![
            FaultPlan::fail_stop_at(TimeNs::from_ms(1_500)),
            FaultPlan::fail_stop_at(TimeNs::from_ms(3_000)),
            FaultPlan::healthy(),
        ]);
        assert_eq!(arrivals, 150, "two faults masked by the surviving replica");
        assert_eq!(flagged, vec![true, true, false]);
    }

    #[test]
    fn multi_fault_accounting_and_latch_ordering() {
        // Satellite coverage for the fleet supervisor's observation path:
        // with replicas 0 and 1 fail-stopped 1.5 s apart, the detectors
        // must agree on *which* replicas are faulty, latch them in injection
        // order, and keep the survivor's stream flowing.
        let model = tri_model();
        let sizing = NSizingReport::analyze(&model).expect("bounded");
        let factory = TriReplica {
            models: model.replicas.clone(),
        };
        let (net, ids) = build_n_modular(
            &model,
            &sizing,
            150,
            (1, 2),
            Arc::new(Payload::U64),
            &factory,
            &[
                FaultPlan::fail_stop_at(TimeNs::from_ms(1_500)),
                FaultPlan::fail_stop_at(TimeNs::from_ms(3_000)),
                FaultPlan::healthy(),
            ],
        );
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let net = engine.network();

        let rep = net
            .channel_as::<NReplicator>(ids.replicator)
            .expect("replicator");
        let sel = net.channel_as::<NSelector>(ids.selector).expect("selector");

        // Which replicas are faulty: the union over both detectors is
        // exactly {0, 1}, and each detector's own view is consistent with
        // its healthy_count.
        let mut faulty: Vec<usize> = rep.faulty_indices().chain(sel.faulty_indices()).collect();
        faulty.sort_unstable();
        faulty.dedup();
        assert_eq!(faulty, vec![0, 1]);
        assert_eq!(
            rep.healthy_count() + rep.faulty_indices().count(),
            3,
            "replicator partition must cover all replicas"
        );
        assert_eq!(
            sel.healthy_count() + sel.faulty_indices().count(),
            3,
            "selector partition must cover all replicas"
        );
        assert!(sel.healthy_count() >= 1, "front-runner never latched");

        // Latch ordering follows injection order: replica 0 died first, so
        // every detector that latched both saw 0 before 1.
        let latch = |i: usize| -> Option<TimeNs> {
            let r = rep.fault(i).map(|f| f.at);
            let s = sel.fault(i).map(|f| f.at);
            match (r, s) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        let (t0, t1) = (latch(0).expect("0 latched"), latch(1).expect("1 latched"));
        assert!(
            t0 < t1,
            "replica 0 must latch before replica 1 ({t0:?} vs {t1:?})"
        );
        assert!(latch(2).is_none(), "survivor never latched");

        // The survivor's stream is still selected end-to-end.
        assert_eq!(ids.consumer_arrivals(net).len(), 150);
    }

    #[test]
    fn last_healthy_replica_is_never_latched() {
        // Even when every replica dies, the detectors keep at least one
        // unlatched (the front-runner) — the single-fault assumption's
        // graceful edge.
        let (_arrivals, flagged) = run_tri(vec![
            FaultPlan::fail_stop_at(TimeNs::from_ms(1_000)),
            FaultPlan::fail_stop_at(TimeNs::from_ms(1_600)),
            FaultPlan::fail_stop_at(TimeNs::from_ms(2_200)),
        ]);
        assert!(!flagged[2], "front-runner must survive latching");
    }

    #[test]
    fn n_selector_delivers_groups_once_any_order() {
        let mut s = NSelector::new("s", vec![4, 4, 4], 3);
        let tok = |seq| Token::new(seq, TimeNs::ZERO, Payload::U64(seq));
        // Group 0 arrives in order 1, 0, 2; group 1 in order 2, 0, 1.
        assert_eq!(s.try_write(1, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(
            s.try_write(0, tok(0), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(2, tok(0), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(s.try_write(2, tok(1), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(
            s.try_write(0, tok(1), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(1, tok(1), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        let mut out = Vec::new();
        while let ReadOutcome::Token(t) = s.try_read(0, TimeNs::ZERO) {
            out.push(t.seq);
        }
        assert_eq!(out, vec![0, 1]);
        assert_eq!(s.enqueued(), 2);
        assert_eq!(s.discarded(), 4);
    }

    #[test]
    fn n_replicator_duplicates_to_all() {
        let mut r = NReplicator::new("r", vec![2, 2, 2], None);
        let tok = |seq| Token::new(seq, TimeNs::ZERO, Payload::U64(seq));
        assert_eq!(r.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        for i in 0..3 {
            assert!(matches!(r.try_read(i, TimeNs::ZERO), ReadOutcome::Token(t) if t.seq == 0));
        }
    }

    #[test]
    #[should_panic(expected = "at least two replicas")]
    fn single_replica_rejected() {
        let _ = NReplicator::new("r", vec![2], None);
    }
}
