//! Observability glue between the arbitration channels and `rtft-obs`.
//!
//! The replicator and selector detect faults with pure counters and latch
//! a [`FaultRecord`](crate::FaultRecord) — that part is the paper's
//! contribution and stays untouched. This module adds an *optional*
//! attachment that mirrors each latch into an [`rtft_obs::HealthModel`]
//! (per-replica status plus a detection-latency histogram) and bumps a
//! couple of counters. All handles are resolved once at attach time, so
//! the channel hot paths pay a single `Option` branch when observability
//! is off and a few relaxed atomic ops when it is on; no clock is ever
//! consulted — the virtual `now` already flowing through every channel
//! operation is reused as the event timestamp.

use rtft_obs::{Counter, DetectionSite, HealthModel, MetricsRegistry};
use rtft_rtc::TimeNs;

/// Pre-resolved observability handles shared by a replicator/selector
/// pair guarding one duplicated subnetwork.
///
/// Cloning is cheap (all fields are `Arc`-backed) and clones feed the
/// same underlying health model and counters, which is exactly what the
/// two channels of one duplication need.
#[derive(Debug, Clone)]
pub struct DetectionObs {
    health: HealthModel,
    detections: Counter,
    duplicates_discarded: Counter,
}

impl DetectionObs {
    /// Creates handles against `registry`, folding detections into
    /// `health` (replica indices 0 and 1). Counters registered:
    /// `core.detections` (latches at either channel) and
    /// `core.selector.discarded` (late duplicates suppressed).
    pub fn new(registry: &MetricsRegistry, health: HealthModel) -> Self {
        DetectionObs {
            health,
            detections: registry.counter("core.detections"),
            duplicates_discarded: registry.counter("core.selector.discarded"),
        }
    }

    /// The shared health model.
    pub fn health(&self) -> &HealthModel {
        &self.health
    }

    pub(crate) fn on_detection(&self, replica: usize, site: DetectionSite, at: TimeNs) {
        self.detections.inc();
        self.health.on_detection(replica, site, at.as_ns());
    }

    pub(crate) fn on_duplicate_discarded(&self) {
        self.duplicates_discarded.inc();
    }
}
