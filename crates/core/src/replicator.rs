//! The replicator channel (paper §3.1 and §3.3).
//!
//! A replicator duplicates a producer's output stream to two replica input
//! ports. It has **one write interface** (the producer) and **two read
//! interfaces** (the replicas), backed by two bounded FIFO queues sized by
//! eq. (3) so that — fault-free — the producer never blocks.
//!
//! Fault detection (§3.3) exploits exactly that sizing guarantee: if a
//! write attempt finds `space_i == 0`, replica `i` must have stopped (or
//! slowed) consuming, so `fault_i` latches `TRUE`, the queue stops
//! receiving tokens, and — crucially — the producer keeps running and the
//! healthy replica keeps being fed, avoiding the §1.1 deadlock scenario.
//! An optional divergence detector on the replicas' *consumption counts*
//! (threshold from eq. (5) applied to the consumption curves) catches
//! slow-consumer faults earlier than the overflow latch.
//!
//! No operation consults a clock: the `now` parameter is recorded in the
//! detection log for the experiment harness, never branched on.

use crate::arbitration::{ArbFault, ArbFaultCause, Arbiter};
use crate::obs::DetectionObs;
use rtft_kpn::{ChannelBehavior, ReadOutcome, Token, WriteOutcome};
use rtft_obs::DetectionSite;
use rtft_rtc::TimeNs;
use std::any::Any;
use std::collections::VecDeque;

/// Which detection rule latched a replica faulty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicatorFaultCause {
    /// A producer write found the replica's queue full (§3.3 overflow rule).
    Overflow,
    /// The difference in consumed-token counts crossed the divergence
    /// threshold.
    Divergence,
}

/// A latched fault-detection record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Time of the operation during which the fault was detected.
    pub at: TimeNs,
    /// Which rule fired.
    pub cause: ReplicatorFaultCause,
}

/// Configuration of a [`Replicator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicatorConfig {
    /// FIFO capacities `|R₁|, |R₂|` from eq. (3).
    pub capacity: [usize; 2],
    /// Enables the overflow fault latch (§3.3). With detection disabled the
    /// replicator behaves per the bare §3.1 rules — writes block on a full
    /// queue — which reproduces the motivational-example deadlock.
    pub detect_overflow: bool,
    /// Optional divergence threshold `D` on consumption counts; `None`
    /// disables the divergence detector.
    pub divergence_threshold: Option<u64>,
}

impl ReplicatorConfig {
    /// Detection-enabled configuration with the given capacities and no
    /// divergence detector.
    pub fn new(capacity: [usize; 2]) -> Self {
        ReplicatorConfig {
            capacity,
            detect_overflow: true,
            divergence_threshold: None,
        }
    }

    /// Adds the divergence detector with threshold `d`.
    pub fn with_divergence_threshold(mut self, d: u64) -> Self {
        self.divergence_threshold = Some(d);
        self
    }

    /// Disables all fault detection (ablation: bare §3.1 semantics).
    pub fn without_detection(mut self) -> Self {
        self.detect_overflow = false;
        self.divergence_threshold = None;
        self
    }
}

/// The replicator channel state machine.
///
/// Implements [`ChannelBehavior`], so it runs unchanged under the
/// discrete-event engine and the threaded runtime.
///
/// # Examples
///
/// ```
/// use rtft_core::{Replicator, ReplicatorConfig};
/// use rtft_kpn::{ChannelBehavior, Payload, ReadOutcome, Token, WriteOutcome};
/// use rtft_rtc::TimeNs;
///
/// let mut r = Replicator::new("rep", ReplicatorConfig::new([2, 2]));
/// let t = Token::new(0, TimeNs::ZERO, Payload::U64(7));
/// assert_eq!(r.try_write(0, t, TimeNs::ZERO), WriteOutcome::Accepted);
/// // Both replicas see the token.
/// assert!(matches!(r.try_read(0, TimeNs::ZERO), ReadOutcome::Token(_)));
/// assert!(matches!(r.try_read(1, TimeNs::ZERO), ReadOutcome::Token(_)));
/// ```
#[derive(Debug)]
pub struct Replicator {
    name: String,
    config: ReplicatorConfig,
    queues: [VecDeque<Token>; 2],
    max_fill: [usize; 2],
    /// Tokens consumed per read interface (for the divergence detector).
    consumed: [u64; 2],
    /// Successful producer writes.
    writes: u64,
    fault: [Option<FaultRecord>; 2],
    obs: Option<DetectionObs>,
}

impl Replicator {
    /// Creates a replicator.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(name: impl Into<String>, config: ReplicatorConfig) -> Self {
        assert!(
            config.capacity[0] > 0 && config.capacity[1] > 0,
            "replicator queue capacities must be positive"
        );
        Replicator {
            name: name.into(),
            config,
            queues: [
                VecDeque::with_capacity(config.capacity[0]),
                VecDeque::with_capacity(config.capacity[1]),
            ],
            max_fill: [0, 0],
            consumed: [0, 0],
            writes: 0,
            fault: [None, None],
            obs: None,
        }
    }

    /// Attaches observability: each fault latch is mirrored into the
    /// handles' [`HealthModel`](rtft_obs::HealthModel). Detection
    /// semantics are unchanged — the latch stays the source of truth.
    pub fn attach_obs(&mut self, obs: DetectionObs) {
        self.obs = Some(obs);
    }

    /// The replicator's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fault record for replica `i`, if detected.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn fault(&self, i: usize) -> Option<FaultRecord> {
        self.fault[i]
    }

    /// `true` if replica `i` is latched faulty.
    pub fn is_faulty(&self, i: usize) -> bool {
        self.fault[i].is_some()
    }

    /// Number of tokens consumed so far by replica `i`.
    pub fn consumed(&self, i: usize) -> u64 {
        self.consumed[i]
    }

    /// Successful producer writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Remaining space in queue `i` (the paper's `space_i`).
    pub fn space(&self, i: usize) -> usize {
        if self.fault[i].is_some() {
            // A latched queue no longer constrains the producer.
            self.config.capacity[i]
        } else {
            self.config.capacity[i] - self.queues[i].len()
        }
    }

    /// Bytes of framework state (fault-detection bookkeeping), excluding
    /// token storage — the paper's Table 2 memory-overhead convention.
    pub fn state_bytes() -> usize {
        std::mem::size_of::<Replicator>()
    }

    fn latch(&mut self, i: usize, at: TimeNs, cause: ReplicatorFaultCause) {
        if self.fault[i].is_none() {
            self.fault[i] = Some(FaultRecord { at, cause });
            // Per §3.3 the replicator stops inserting tokens into the
            // latched queue; pending tokens stay readable in case the
            // replica is later serviced for diagnosis.
            if let Some(obs) = &self.obs {
                let site = match cause {
                    ReplicatorFaultCause::Overflow => DetectionSite::ReplicatorOverflow,
                    ReplicatorFaultCause::Divergence => DetectionSite::ReplicatorDivergence,
                };
                obs.on_detection(i, site, at);
            }
        }
    }

    fn check_divergence(&mut self, now: TimeNs) {
        let Some(d) = self.config.divergence_threshold else {
            return;
        };
        if self.fault[0].is_some() || self.fault[1].is_some() {
            return;
        }
        let (a, b) = (self.consumed[0], self.consumed[1]);
        if a.abs_diff(b) >= d {
            let behind = if a < b { 0 } else { 1 };
            self.latch(behind, now, ReplicatorFaultCause::Divergence);
        }
    }
}

impl ChannelBehavior for Replicator {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0, "replicator has a single write interface");

        if self.config.detect_overflow {
            // §3.3: a full healthy queue at a write attempt means that
            // replica has a timing fault — latch it and keep going.
            for i in 0..2 {
                if self.fault[i].is_none() && self.queues[i].len() >= self.config.capacity[i] {
                    self.latch(i, now, ReplicatorFaultCause::Overflow);
                }
            }
        } else {
            // Bare §3.1 rule 3: block unless both queues have space.
            if (0..2).any(|i| self.queues[i].len() >= self.config.capacity[i]) {
                return WriteOutcome::Blocked(token);
            }
        }

        let mut delivered = false;
        for i in 0..2 {
            if self.fault[i].is_none() {
                self.queues[i].push_back(token.clone());
                self.max_fill[i] = self.max_fill[i].max(self.queues[i].len());
                delivered = true;
            }
        }
        self.writes += 1;
        if delivered {
            WriteOutcome::Accepted
        } else {
            WriteOutcome::AcceptedDropped
        }
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        assert!(iface < 2, "replicator has two read interfaces");
        match self.queues[iface].pop_front() {
            Some(t) => {
                self.consumed[iface] += 1;
                self.check_divergence(now);
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn write_ifaces(&self) -> usize {
        1
    }

    fn read_ifaces(&self) -> usize {
        2
    }

    fn fill(&self, iface: usize) -> usize {
        self.queues[iface].len()
    }

    fn capacity(&self, iface: usize) -> usize {
        self.config.capacity[iface]
    }

    fn max_fill(&self, iface: usize) -> usize {
        self.max_fill[iface]
    }

    fn debug_name(&self) -> Option<&str> {
        Some(&self.name)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Arbiter for Replicator {
    fn arbiter_name(&self) -> &str {
        self.name()
    }

    fn replica_ifaces(&self) -> usize {
        2
    }

    fn latched(&self, i: usize) -> Option<ArbFault> {
        self.fault[i].map(|f| ArbFault {
            at: f.at,
            cause: match f.cause {
                // An overflowed replica queue is the write-side stall
                // detector: the replica stopped consuming.
                ReplicatorFaultCause::Overflow => ArbFaultCause::Stall,
                ReplicatorFaultCause::Divergence => ArbFaultCause::Divergence,
            },
            group: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::Payload;

    fn tok(seq: u64) -> Token {
        Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
    }

    fn replicator(caps: [usize; 2]) -> Replicator {
        Replicator::new("r", ReplicatorConfig::new(caps))
    }

    #[test]
    fn duplicates_every_token_to_both_queues() {
        let mut r = replicator([4, 4]);
        for s in 0..3 {
            assert_eq!(r.try_write(0, tok(s), TimeNs::ZERO), WriteOutcome::Accepted);
        }
        for i in 0..2 {
            for s in 0..3 {
                match r.try_read(i, TimeNs::ZERO) {
                    ReadOutcome::Token(t) => {
                        assert_eq!(t.seq, s);
                        assert_eq!(t.payload, Payload::U64(s));
                    }
                    ReadOutcome::Blocked => panic!("queue {i} missing token {s}"),
                }
            }
        }
    }

    #[test]
    fn timestamps_are_preserved() {
        let mut r = replicator([2, 2]);
        let t = Token::new(0, TimeNs::from_ms(17), Payload::Empty);
        r.try_write(0, t, TimeNs::from_ms(20));
        for i in 0..2 {
            match r.try_read(i, TimeNs::from_ms(21)) {
                ReadOutcome::Token(t) => assert_eq!(t.produced_at, TimeNs::from_ms(17)),
                ReadOutcome::Blocked => panic!(),
            }
        }
    }

    #[test]
    fn overflow_latches_fault_and_unblocks_producer() {
        let mut r = replicator([2, 4]);
        // Replica 0 never reads; replica 1 keeps up.
        for s in 0..2 {
            assert_eq!(
                r.try_write(0, tok(s), TimeNs::from_ms(s)),
                WriteOutcome::Accepted
            );
            assert!(matches!(
                r.try_read(1, TimeNs::from_ms(s)),
                ReadOutcome::Token(_)
            ));
        }
        assert!(!r.is_faulty(0));
        // Third write: queue 0 full → latch, token still goes to replica 1.
        assert_eq!(
            r.try_write(0, tok(2), TimeNs::from_ms(5)),
            WriteOutcome::Accepted
        );
        let fault = r.fault(0).expect("latched");
        assert_eq!(fault.cause, ReplicatorFaultCause::Overflow);
        assert_eq!(fault.at, TimeNs::from_ms(5));
        assert!(matches!(
            r.try_read(1, TimeNs::from_ms(5)),
            ReadOutcome::Token(_)
        ));
        // Producer can keep writing indefinitely.
        for s in 3..100 {
            assert_eq!(
                r.try_write(0, tok(s), TimeNs::from_ms(s)),
                WriteOutcome::Accepted
            );
            assert!(matches!(
                r.try_read(1, TimeNs::from_ms(s)),
                ReadOutcome::Token(_)
            ));
        }
        // The latched queue received nothing beyond its capacity.
        assert_eq!(r.fill(0), 2);
        assert_eq!(r.max_fill(0), 2);
    }

    #[test]
    fn without_detection_write_blocks_on_full_queue() {
        let mut r = Replicator::new("r", ReplicatorConfig::new([1, 4]).without_detection());
        assert_eq!(r.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        // Queue 0 full, nobody reads it: the producer blocks (§1.1 hazard).
        assert!(matches!(
            r.try_write(0, tok(1), TimeNs::ZERO),
            WriteOutcome::Blocked(_)
        ));
        assert!(!r.is_faulty(0));
    }

    #[test]
    fn divergence_detector_flags_slow_consumer() {
        let cfg = ReplicatorConfig::new([8, 8]).with_divergence_threshold(3);
        let mut r = Replicator::new("r", cfg);
        for s in 0..4 {
            r.try_write(0, tok(s), TimeNs::from_ms(s));
        }
        // Replica 1 consumes 3, replica 0 none → divergence 3 ≥ D=3.
        for k in 0..3u64 {
            assert!(matches!(
                r.try_read(1, TimeNs::from_ms(10 + k)),
                ReadOutcome::Token(_)
            ));
        }
        let fault = r.fault(0).expect("divergence latched");
        assert_eq!(fault.cause, ReplicatorFaultCause::Divergence);
        assert_eq!(fault.at, TimeNs::from_ms(12));
    }

    #[test]
    fn divergence_below_threshold_is_tolerated() {
        let cfg = ReplicatorConfig::new([8, 8]).with_divergence_threshold(3);
        let mut r = Replicator::new("r", cfg);
        for s in 0..8 {
            r.try_write(0, tok(s), TimeNs::ZERO);
        }
        r.try_read(1, TimeNs::ZERO);
        r.try_read(1, TimeNs::ZERO);
        assert!(!r.is_faulty(0), "divergence 2 < 3 must not latch");
        r.try_read(0, TimeNs::ZERO);
        assert!(!r.is_faulty(0));
        assert!(!r.is_faulty(1));
    }

    #[test]
    fn both_replicas_faulty_drops_tokens() {
        let mut r = replicator([1, 1]);
        r.try_write(0, tok(0), TimeNs::ZERO);
        // Both queues full: both latch; the write is accepted-but-dropped.
        assert_eq!(
            r.try_write(0, tok(1), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert!(r.is_faulty(0) && r.is_faulty(1));
    }

    #[test]
    fn reads_block_on_empty_queue() {
        let mut r = replicator([2, 2]);
        assert_eq!(r.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked);
        assert_eq!(r.try_read(1, TimeNs::ZERO), ReadOutcome::Blocked);
    }

    #[test]
    fn space_accounting_matches_paper_variables() {
        let mut r = replicator([2, 3]);
        assert_eq!((r.space(0), r.space(1)), (2, 3));
        r.try_write(0, tok(0), TimeNs::ZERO);
        assert_eq!((r.space(0), r.space(1)), (1, 2));
        r.try_read(0, TimeNs::ZERO);
        assert_eq!((r.space(0), r.space(1)), (2, 2));
    }

    #[test]
    fn state_footprint_is_small() {
        // The paper reports ~1.5 KB replicator overhead (excluding tokens);
        // our bookkeeping is well under that.
        assert!(
            Replicator::state_bytes() < 1536,
            "{}",
            Replicator::state_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "single write interface")]
    fn write_iface_1_rejected() {
        let mut r = replicator([2, 2]);
        let _ = r.try_write(1, tok(0), TimeNs::ZERO);
    }
}
