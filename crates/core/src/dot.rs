//! Graphviz DOT emission for network topologies (paper Figures 1 and 2).
//!
//! The figures in the paper are structural, not data plots; the experiment
//! harness regenerates them as DOT text that `dot -Tpng` renders into the
//! same diagrams.

use std::fmt::Write as _;

/// A lightweight sketch of a process network for rendering.
#[derive(Debug, Default, Clone)]
pub struct NetworkSketch {
    name: String,
    nodes: Vec<(String, NodeShape)>,
    edges: Vec<(String, String, Option<String>)>,
    clusters: Vec<(String, Vec<String>)>,
}

/// Visual classes of sketch nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeShape {
    /// A computation process (ellipse).
    Process,
    /// A FIFO channel (box).
    Channel,
    /// A replicator/selector arbitration channel (diamond).
    Arbiter,
}

impl NetworkSketch {
    /// Creates an empty sketch titled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkSketch {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a node.
    pub fn node(&mut self, id: impl Into<String>, shape: NodeShape) -> &mut Self {
        self.nodes.push((id.into(), shape));
        self
    }

    /// Adds a directed edge, optionally labelled.
    pub fn edge(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        label: Option<&str>,
    ) -> &mut Self {
        self.edges
            .push((from.into(), to.into(), label.map(str::to_owned)));
        self
    }

    /// Groups nodes into a labelled cluster (e.g. one replica).
    pub fn cluster(&mut self, label: impl Into<String>, members: Vec<String>) -> &mut Self {
        self.clusters.push((label.into(), members));
        self
    }

    /// Renders the sketch as Graphviz DOT text.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
        for (i, (label, members)) in self.clusters.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{i} {{");
            let _ = writeln!(out, "    label=\"{label}\";");
            for m in members {
                let _ = writeln!(out, "    \"{m}\";");
            }
            let _ = writeln!(out, "  }}");
        }
        for (id, shape) in &self.nodes {
            let attrs = match shape {
                NodeShape::Process => "shape=ellipse",
                NodeShape::Channel => "shape=box, style=rounded",
                NodeShape::Arbiter => "shape=diamond, style=filled, fillcolor=lightgrey",
            };
            let _ = writeln!(out, "  \"{id}\" [{attrs}];");
        }
        for (from, to, label) in &self.edges {
            match label {
                Some(l) => {
                    let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [label=\"{l}\"];");
                }
                None => {
                    let _ = writeln!(out, "  \"{from}\" -> \"{to}\";");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The reference process network of Figure 1 (top).
pub fn figure1_reference() -> NetworkSketch {
    let mut s = NetworkSketch::new("reference");
    s.node("P", NodeShape::Process)
        .node("F_P", NodeShape::Channel)
        .node("critical subnetwork", NodeShape::Process)
        .node("F_C", NodeShape::Channel)
        .node("C", NodeShape::Process)
        .edge("P", "F_P", None)
        .edge("F_P", "critical subnetwork", Some("I"))
        .edge("critical subnetwork", "F_C", Some("O"))
        .edge("F_C", "C", None);
    s
}

/// The duplicated process network of Figure 1 (bottom).
pub fn figure1_duplicated() -> NetworkSketch {
    let mut s = NetworkSketch::new("duplicated");
    s.node("P", NodeShape::Process)
        .node("replicator", NodeShape::Arbiter)
        .node("replica R1", NodeShape::Process)
        .node("replica R2", NodeShape::Process)
        .node("selector", NodeShape::Arbiter)
        .node("C", NodeShape::Process)
        .edge("P", "replicator", None)
        .edge("replicator", "replica R1", Some("I1 (|R1|)"))
        .edge("replicator", "replica R2", Some("I2 (|R2|)"))
        .edge("replica R1", "selector", Some("O1 (|S1|)"))
        .edge("replica R2", "selector", Some("O2 (|S2|)"))
        .edge("selector", "C", None);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_wellformed() {
        let dot = figure1_duplicated().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("replicator"));
        assert!(dot.contains("selector"));
        assert!(dot.contains("\"P\" -> \"replicator\""));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn reference_sketch_has_fifos() {
        let dot = figure1_reference().to_dot();
        assert!(dot.contains("F_P"));
        assert!(dot.contains("F_C"));
    }

    #[test]
    fn clusters_render_as_subgraphs() {
        let mut s = NetworkSketch::new("g");
        s.node("a", NodeShape::Process)
            .node("b", NodeShape::Process)
            .edge("a", "b", None);
        s.cluster("replica", vec!["a".into(), "b".into()]);
        let dot = s.to_dot();
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"replica\""));
    }
}
