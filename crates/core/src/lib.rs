//! # rtft-core — timing fault detection & tolerance for process networks
//!
//! The primary contribution of *"An Efficient Real Time Fault Detection and
//! Tolerance Framework Validated on the Intel SCC Processor"* (Rai, Huang,
//! Stoimenov, Thiele — DAC 2014), reimplemented as a Rust library.
//!
//! A safety-critical streaming application (a Kahn-style process network)
//! is made tolerant to a single permanent **timing fault** by duplicating
//! its critical subnetwork and wrapping the two replicas between two
//! special arbitration channels:
//!
//! * the [`Replicator`] duplicates the producer stream to both replicas and
//!   detects a replica that stops (or slows) *consuming* — a write attempt
//!   that finds a replica queue full latches that replica faulty (§3.3) and
//!   un-blocks the producer, avoiding the deadlock of §1.1;
//! * the [`Selector`] merges the replica outputs, delivering the first
//!   token of each duplicate pair and discarding the late one (§3.1), and
//!   detects a replica that stops (or slows) *producing* via the
//!   divergence threshold `D` of eq. (5) and/or the stall rule.
//!
//! Neither channel ever reads a clock — all detection is counter-based,
//! with the counters' thresholds derived offline by `rtft-rtc` from the
//! application's arrival-curve models.
//!
//! # Quick start
//!
//! ```
//! use rtft_core::{
//!     build_duplicated, DuplicationConfig, FaultPlan, JitterStageReplica,
//! };
//! use rtft_kpn::{Engine, Payload};
//! use rtft_rtc::sizing::DuplicationModel;
//! use rtft_rtc::{PjdModel, TimeNs};
//! use std::sync::Arc;
//!
//! // Interface models: ~30 fps with differing replica jitter (Table 1).
//! let model = DuplicationModel::symmetric(
//!     PjdModel::from_ms(30.0, 2.0, 0.0),
//!     PjdModel::from_ms(30.0, 2.0, 90.0), // consumer starts one hyperperiod late
//!     [PjdModel::from_ms(30.0, 5.0, 0.0), PjdModel::from_ms(30.0, 30.0, 0.0)],
//! );
//! let cfg = DuplicationConfig::from_model(model)?
//!     .with_token_count(100)
//!     .with_payload(Arc::new(Payload::U64))
//!     // Replica 0 fail-stops after one second.
//!     .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(1)));
//!
//! let replica = JitterStageReplica::from_model(&cfg.model).with_seeds([11, 22]);
//! let (net, ids) = build_duplicated(&cfg, &replica);
//! let mut engine = Engine::new(net);
//! engine.run_until(TimeNs::from_secs(20));
//!
//! // The fault was detected…
//! let faults = ids.selector_faults(engine.network());
//! assert!(faults[0].is_some() || ids.replicator_faults(engine.network())[0].is_some());
//! // …and masked: the consumer received every token.
//! assert_eq!(ids.consumer_arrivals(engine.network()).len(), 100);
//! # Ok::<(), rtft_rtc::CurveAnalysisError>(())
//! ```

#![warn(missing_docs)]

pub mod arbitration;
mod builder;
pub mod dot;
pub mod equivalence;
mod fault;
pub mod hetero;
pub mod nmodular;
mod obs;
mod replicator;
mod selector;
mod voting;

// The streaming checksum the equivalence checks and the WAL record format
// share — re-exported so fault-tolerance code can name it without reaching
// into the runtime crate.
pub use rtft_kpn::{digest_bytes, Digest};

pub use arbitration::{
    ArbFault, ArbFaultCause, Arbiter, ArbiterLedger, ComparePolicy, FirstOfGroup, PolicySelector,
};
pub use builder::{
    build_duplicated, build_reference, instrument_duplicated, DuplicatedIds, DuplicationConfig,
    JitterStageReplica, PayloadGenerator, ReferenceIds, ReplicaFactory,
};
pub use fault::{CorruptionMode, FaultKind, FaultPlan, FaultTrigger, FaultyProcess};
pub use hetero::{
    build_hetero, HeteroIds, HeteroModel, HeteroSelector, HeteroSizingReport, HeteroStageReplica,
    SampledCheck, SampledReplicator,
};
pub use nmodular::{
    build_n_modular, NJitterStageReplica, NModularIds, NModularModel, NReplicator, NSelector,
    NSizingReport,
};
pub use obs::DetectionObs;
pub use replicator::{FaultRecord, Replicator, ReplicatorConfig, ReplicatorFaultCause};
pub use selector::{Selector, SelectorConfig, SelectorFaultCause, SelectorFaultRecord};
pub use voting::{build_n_modular_voting, VoteFaultCause, VoteFaultRecord, VotingSelector};
