//! Value-voting selector: n-modular redundancy over token *values*.
//!
//! The paper's selector arbitrates purely on *timing* — first token of each
//! duplicate group wins — which is sound under the fail-silent assumption
//! that a faulty replica never emits a wrong value. Silent data corruption
//! breaks that assumption: a replica that keeps perfect pace while flipping
//! payload bits sails straight through every counter-based detector. The
//! [`VotingSelector`] closes the gap, in the spirit of replay/value
//! comparison schemes (RepTFD; FlexStep): it majority-votes on the FNV
//! digest of each duplicate group's payloads, delivers the first token of
//! the winning digest, and latches any replica whose vote disagrees with
//! the decided majority as *value-faulty*.
//!
//! Timing detection is retained unchanged (the divergence-`D` and stall
//! rules of the [`NSelector`](crate::NSelector)), so a fail-stopped replica
//! is still latched and cannot starve the quorum: with `n` replicas the
//! quorum is a fixed majority `⌊n/2⌋ + 1`, so up to `⌈n/2⌉ − 1` faulty
//! replicas — timing- or value-faulty, in any mix — are tolerated.
//!
//! The cost relative to the timing selector is delivery latency: a group is
//! released only once a majority agrees, not on first arrival. The sizing
//! analysis still applies (the same virtual per-replica queues bound
//! buffering), but the consumer's initial delay must cover the slowest
//! *majority* replica rather than the fastest single one.

use crate::arbitration::{ArbFaultCause, ArbiterLedger, ComparePolicy, PolicySelector};
use crate::fault::FaultPlan;
use rtft_kpn::{Network, PjdSink, PjdSource, PortId, Token, WriteOutcome};
use rtft_rtc::TimeNs;
use std::collections::BTreeMap;

/// Why the voting selector latched a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoteFaultCause {
    /// The replica's vote disagreed with the decided majority digest —
    /// silent data corruption, invisible to every timing detector.
    ValueMismatch,
    /// The replica's received count fell `D` behind the healthy
    /// front-runner (the eq. (5) rule, unchanged).
    Divergence,
    /// The replica's virtual queue emptied beyond the stall slack.
    Stall,
}

/// A latched fault: when, why, and (for value faults) which group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteFaultRecord {
    /// Virtual time of the latch.
    pub at: TimeNs,
    /// Detection rule that fired.
    pub cause: VoteFaultCause,
    /// Duplicate-group index of the mismatching vote (value faults only).
    pub group: Option<u64>,
}

/// Per-group voting state, kept until the group is decided, delivered, and
/// fully voted (or its stragglers latched).
#[derive(Debug)]
struct Group {
    /// Digest voted by each interface, in arrival order per interface.
    votes: Vec<Option<u64>>,
    /// First token seen per distinct digest (the delivery candidate).
    candidates: Vec<(u64, Token)>,
    /// Majority digest, once a quorum agrees.
    decided: Option<u64>,
    /// `true` once the winning token was handed to the consumer queue.
    delivered: bool,
}

impl Group {
    fn new(n: usize) -> Self {
        Group {
            votes: vec![None; n],
            candidates: Vec::new(),
            decided: None,
            delivered: false,
        }
    }
}

/// The majority-vote [`ComparePolicy`]: interface `i`'s `k`-th write is
/// replica `i`'s vote for duplicate group `k`; a group is delivered (in
/// group order) once [`quorum`](MajorityVote::quorum) votes agree on a
/// payload digest, and votes that disagree with a decided majority latch
/// their replica value-faulty, whether they arrive before or after the
/// decision.
#[derive(Debug)]
pub struct MajorityVote {
    quorum: usize,
    groups: BTreeMap<u64, Group>,
    next_deliver: u64,
}

impl MajorityVote {
    /// A majority policy for `n` replicas (quorum `⌊n/2⌋ + 1`).
    pub fn for_replicas(n: usize) -> Self {
        MajorityVote {
            quorum: n / 2 + 1,
            groups: BTreeMap::new(),
            next_deliver: 0,
        }
    }

    /// The votes-agree quorum (`⌊n/2⌋ + 1`).
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Delivers decided groups in order and drops fully-voted state.
    fn flush(&mut self, ledger: &mut ArbiterLedger) -> bool {
        let mut delivered_any = false;
        while let Some(g) = self.groups.get_mut(&self.next_deliver) {
            let Some(winner) = g.decided else { break };
            if !g.delivered {
                let tok = g
                    .candidates
                    .iter()
                    .find(|(d, _)| *d == winner)
                    .map(|(_, t)| t.clone())
                    .expect("decided digest always has a candidate token");
                ledger.deliver(tok);
                g.delivered = true;
                delivered_any = true;
            }
            // Retire the group once every replica has voted or is latched —
            // later stragglers can no longer reference it (a latched
            // interface's writes are swallowed before voting).
            let complete = (0..ledger.replica_count())
                .all(|i| g.votes[i].is_some() || ledger.fault(i).is_some());
            if complete {
                self.groups.remove(&self.next_deliver);
                self.next_deliver += 1;
            } else {
                break;
            }
        }
        delivered_any
    }
}

impl ComparePolicy for MajorityVote {
    fn arbitrate(
        &mut self,
        ledger: &mut ArbiterLedger,
        iface: usize,
        token: Token,
        now: TimeNs,
    ) -> WriteOutcome {
        let group = ledger.note_received(iface);
        let digest = token.payload.digest();
        let n = ledger.replica_count();
        let quorum = self.quorum;

        if group < self.next_deliver {
            // Straggler vote for a group already retired (its state was
            // dropped because this interface was latched at the time, or
            // the group completed). Count it as discarded.
            ledger.discard();
        } else {
            let g = self.groups.entry(group).or_insert_with(|| Group::new(n));
            g.votes[iface] = Some(digest);
            if !g.candidates.iter().any(|(d, _)| *d == digest) {
                g.candidates.push((digest, token));
            }
            match g.decided {
                Some(winner) => {
                    ledger.discard();
                    if digest != winner {
                        ledger.latch(iface, ArbFaultCause::ValueMismatch, Some(group), now);
                    }
                }
                None => {
                    let agree = g.votes.iter().flatten().filter(|d| **d == digest).count();
                    if agree >= quorum {
                        g.decided = Some(digest);
                        // Latch every earlier voter that disagreed with the
                        // now-decided majority.
                        let losers: Vec<usize> = g
                            .votes
                            .iter()
                            .enumerate()
                            .filter_map(|(i, v)| match v {
                                Some(d) if *d != digest => Some(i),
                                _ => None,
                            })
                            .collect();
                        for i in losers {
                            ledger.latch(i, ArbFaultCause::ValueMismatch, Some(group), now);
                        }
                    }
                }
            }
        }

        if self.flush(ledger) {
            WriteOutcome::Accepted
        } else {
            WriteOutcome::AcceptedDropped
        }
    }
}

/// N-way selector channel that majority-votes on token values: the
/// [`MajorityVote`] policy over the shared
/// [`ArbiterLedger`](crate::arbitration::ArbiterLedger). Timing detection
/// (divergence / stall) is inherited from the ledger unchanged.
pub type VotingSelector = PolicySelector<MajorityVote>;

impl VotingSelector {
    /// Creates a voting selector with per-replica virtual capacities and
    /// timing divergence threshold `d` (stall slack `d − 1`).
    ///
    /// # Panics
    ///
    /// Panics on fewer than three interfaces (majority voting needs a
    /// tie-breaker), a zero capacity, or `d == 0`.
    pub fn new(name: impl Into<String>, capacity: Vec<usize>, d: u64) -> Self {
        assert!(
            capacity.len() >= 3,
            "value voting needs at least three replicas"
        );
        let n = capacity.len();
        PolicySelector::from_parts(
            ArbiterLedger::new(name, capacity, d),
            MajorityVote::for_replicas(n),
        )
    }

    /// Fault record of replica `i`, if latched.
    pub fn fault(&self, i: usize) -> Option<VoteFaultRecord> {
        self.arb_fault(i).map(|f| VoteFaultRecord {
            at: f.at,
            cause: match f.cause {
                ArbFaultCause::ValueMismatch => VoteFaultCause::ValueMismatch,
                ArbFaultCause::Divergence => VoteFaultCause::Divergence,
                ArbFaultCause::Stall => VoteFaultCause::Stall,
            },
            group: f.group,
        })
    }

    /// The votes-agree quorum (`⌊n/2⌋ + 1`).
    pub fn quorum(&self) -> usize {
        self.policy().quorum()
    }
}

/// Builds an n-modular network arbitrated by a [`VotingSelector`] instead
/// of the timing-only [`NSelector`](crate::NSelector): producer →
/// n-replicator → `n` replicas → voting selector → consumer.
///
/// Uses the same sizing as [`build_n_modular`](crate::build_n_modular);
/// the returned [`NModularIds`](crate::NModularIds)'s `selector` channel
/// downcasts to [`VotingSelector`].
///
/// # Panics
///
/// Panics if `faults.len() != model.replicas.len()` or fewer than three
/// replicas are configured.
pub fn build_n_modular_voting(
    model: &crate::NModularModel,
    sizing: &crate::NSizingReport,
    token_count: u64,
    seeds: (u64, u64),
    payload: crate::PayloadGenerator,
    factory: &dyn crate::ReplicaFactory,
    faults: &[FaultPlan],
) -> (Network, crate::NModularIds) {
    let n = model.replicas.len();
    assert!(n >= 3, "value voting needs at least three replicas");
    assert_eq!(faults.len(), n, "one fault plan per replica");

    let mut net = Network::new();
    let replicator = net.add_channel(crate::NReplicator::new(
        "n-replicator",
        sizing
            .replicator_capacity
            .iter()
            .map(|c| *c as usize)
            .collect(),
        Some(sizing.threshold),
    ));
    let selector = net.add_channel(VotingSelector::new(
        "voting-selector",
        sizing
            .selector_capacity
            .iter()
            .map(|c| *c as usize)
            .collect(),
        sizing.threshold,
    ));

    let gen = payload;
    let producer = net.add_process(PjdSource::new(
        "producer",
        PortId::of(replicator),
        model.producer,
        seeds.0,
        Some(token_count),
        move |seq| gen(seq),
    ));

    let replicas: Vec<Vec<rtft_kpn::NodeId>> = (0..n)
        .map(|i| {
            factory.build(
                &mut net,
                PortId::iface(replicator, i),
                PortId::iface(selector, i),
                i,
                faults[i],
            )
        })
        .collect();

    let consumer = net.add_process(PjdSink::new(
        "consumer",
        PortId::of(selector),
        model.consumer,
        seeds.1,
        Some(token_count),
    ));

    (
        net,
        crate::NModularIds {
            replicator,
            selector,
            producer,
            consumer,
            replicas,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CorruptionMode, FaultPlan};
    use crate::{NModularModel, NSizingReport};
    use rtft_kpn::{ChannelBehavior, Engine, Fifo, Payload, PjdShaper, ReadOutcome, Transform};
    use rtft_rtc::PjdModel;
    use std::sync::Arc;

    fn tok(seq: u64, payload: Payload) -> Token {
        Token::new(seq, TimeNs::ZERO, payload)
    }

    #[test]
    fn majority_delivers_and_latches_minority() {
        let mut s = VotingSelector::new("v", vec![4, 4, 4], 3);
        // Group 0: replica 1 votes a corrupted value first, then the two
        // healthy replicas agree — the group is decided on their digest and
        // replica 1 is latched retroactively.
        assert_eq!(
            s.try_write(1, tok(0, Payload::U64(99)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(0, tok(0, Payload::U64(7)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(2, tok(0, Payload::U64(7)), TimeNs::from_ms(1)),
            WriteOutcome::Accepted
        );
        let f = s.fault(1).expect("mismatching replica latched");
        assert_eq!(f.cause, VoteFaultCause::ValueMismatch);
        assert_eq!(f.group, Some(0));
        assert_eq!(f.at, TimeNs::from_ms(1));
        assert!(s.fault(0).is_none() && s.fault(2).is_none());
        match s.try_read(0, TimeNs::from_ms(2)) {
            ReadOutcome::Token(t) => assert_eq!(t.payload, Payload::U64(7)),
            other => panic!("expected the majority token, got {other:?}"),
        }
        assert_eq!(s.enqueued(), 1);
    }

    #[test]
    fn late_mismatching_vote_latches_after_decision() {
        let mut s = VotingSelector::new("v", vec![4, 4, 4], 3);
        assert_eq!(
            s.try_write(0, tok(0, Payload::U64(7)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        // Quorum of 2 decides the group…
        assert_eq!(
            s.try_write(1, tok(0, Payload::U64(7)), TimeNs::ZERO),
            WriteOutcome::Accepted
        );
        // …and the straggler's disagreeing vote latches it.
        assert_eq!(
            s.try_write(2, tok(0, Payload::U64(8)), TimeNs::from_ms(5)),
            WriteOutcome::AcceptedDropped
        );
        let f = s.fault(2).expect("late mismatch latched");
        assert_eq!(f.cause, VoteFaultCause::ValueMismatch);
        assert_eq!(f.group, Some(0));
    }

    #[test]
    fn groups_deliver_in_order_even_when_decided_out_of_order() {
        let mut s = VotingSelector::new("v", vec![8, 8, 8], 5);
        // Replica 0 is corrupt: group 0 gets votes 9 (corrupt) and 7 — no
        // quorum yet. Group 1 reaches quorum first via replicas 0? No:
        // replica votes are sequential per interface, so build the skew
        // with replicas 1 and 2 racing ahead.
        assert_eq!(
            s.try_write(1, tok(0, Payload::U64(7)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(2, tok(0, Payload::U64(9)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        // Group 1 decided by replicas 1 and 2 before group 0 has a quorum.
        assert_eq!(
            s.try_write(1, tok(1, Payload::U64(17)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(2, tok(1, Payload::U64(17)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped,
            "group 1 decided but must not overtake undecided group 0"
        );
        assert!(matches!(s.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked));
        // Replica 0's group-0 vote breaks the tie → both groups flush, in
        // order.
        assert_eq!(
            s.try_write(0, tok(0, Payload::U64(7)), TimeNs::from_ms(1)),
            WriteOutcome::Accepted
        );
        let seqs: Vec<u64> = std::iter::from_fn(|| match s.try_read(0, TimeNs::from_ms(2)) {
            ReadOutcome::Token(t) => Some(t.payload.as_u64().unwrap()),
            ReadOutcome::Blocked => None,
        })
        .collect();
        assert_eq!(seqs, vec![7, 17]);
        // Replica 2's lone group-0 vote (9) lost to the majority.
        let f = s.fault(2).expect("group-0 minority latched");
        assert_eq!(f.cause, VoteFaultCause::ValueMismatch);
    }

    #[test]
    fn latched_replica_writes_are_swallowed() {
        let mut s = VotingSelector::new("v", vec![2, 2, 2], 2);
        assert_eq!(
            s.try_write(0, tok(0, Payload::U64(1)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(1, tok(0, Payload::U64(2)), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(
            s.try_write(2, tok(0, Payload::U64(1)), TimeNs::ZERO),
            WriteOutcome::Accepted
        );
        assert!(s.fault(1).is_some());
        // The latched replica can spam writes without blocking anything.
        for k in 1..10 {
            assert_eq!(
                s.try_write(1, tok(k, Payload::U64(0)), TimeNs::ZERO),
                WriteOutcome::AcceptedDropped
            );
        }
        assert_eq!(s.healthy_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least three replicas")]
    fn two_way_voting_rejected() {
        let _ = VotingSelector::new("v", vec![2, 2], 2);
    }

    /// Pass-through replica factory: stage + shaper, so the end-to-end
    /// digest equals the producer's payload digest.
    struct PassThrough {
        models: Vec<PjdModel>,
    }

    impl crate::ReplicaFactory for PassThrough {
        fn build(
            &self,
            net: &mut Network,
            input: PortId,
            output: PortId,
            replica: usize,
            fault: FaultPlan,
        ) -> Vec<rtft_kpn::NodeId> {
            let internal = net.add_channel(Fifo::new(format!("r{replica}.mid"), 4));
            let stage = Transform::new(
                format!("r{replica}.stage"),
                input,
                PortId::of(internal),
                TimeNs::from_ms(2),
                TimeNs::ZERO,
                replica as u64,
                |p| p,
            );
            let stage_id = net.add_process(crate::FaultyProcess::new(stage, fault));
            let model = self.models[replica].with_delay(TimeNs::from_ms(5));
            let shaper = net.add_process(PjdShaper::new(
                format!("r{replica}.shaper"),
                PortId::of(internal),
                output,
                model,
                0x5eed + replica as u64,
            ));
            vec![stage_id, shaper]
        }
    }

    fn tri_model() -> NModularModel {
        NModularModel {
            producer: PjdModel::from_ms(30.0, 2.0, 0.0),
            consumer: PjdModel::from_ms(30.0, 2.0, 120.0),
            replicas: vec![
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 15.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        }
    }

    fn run_voting(faults: Vec<FaultPlan>) -> (Vec<(TimeNs, u64)>, Vec<Option<VoteFaultRecord>>) {
        let model = tri_model();
        let sizing = NSizingReport::analyze(&model).expect("bounded");
        let factory = PassThrough {
            models: model.replicas.clone(),
        };
        let tokens = 150u64;
        let (net, ids) = build_n_modular_voting(
            &model,
            &sizing,
            tokens,
            (1, 2),
            Arc::new(|seq| Payload::U64(seq.wrapping_mul(0x9e37_79b9))),
            &factory,
            &faults,
        );
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let net = engine.network();
        let arrivals = ids.consumer_arrivals(net).to_vec();
        let sel = net
            .channel_as::<VotingSelector>(ids.selector)
            .expect("voting selector");
        let faults = (0..3).map(|i| sel.fault(i)).collect();
        (arrivals, faults)
    }

    #[test]
    fn fault_free_voting_delivers_everything_once() {
        let (arrivals, faults) = run_voting(vec![FaultPlan::healthy(); 3]);
        assert_eq!(arrivals.len(), 150);
        assert!(faults.iter().all(|f| f.is_none()), "no false positives");
        // Every delivered digest matches the producer's payload.
        for (i, (_, digest)) in arrivals.iter().enumerate() {
            let expect = Payload::U64((i as u64).wrapping_mul(0x9e37_79b9)).digest();
            assert_eq!(*digest, expect, "token {i}");
        }
    }

    #[test]
    fn corrupt_replica_is_latched_and_masked() {
        let (arrivals, faults) = run_voting(vec![
            FaultPlan::corrupt_at(CorruptionMode::BitFlip(12), TimeNs::from_secs(1)),
            FaultPlan::healthy(),
            FaultPlan::healthy(),
        ]);
        assert_eq!(arrivals.len(), 150, "corruption fully masked");
        let f = faults[0].expect("corrupt replica latched");
        assert_eq!(f.cause, VoteFaultCause::ValueMismatch);
        assert!(f.at >= TimeNs::from_secs(1));
        assert!(faults[1].is_none() && faults[2].is_none());
        // Every delivered value is the *correct* one.
        for (i, (_, digest)) in arrivals.iter().enumerate() {
            let expect = Payload::U64((i as u64).wrapping_mul(0x9e37_79b9)).digest();
            assert_eq!(*digest, expect, "token {i}");
        }
    }

    #[test]
    fn fail_stop_under_voting_is_latched_by_timing_rules() {
        let (arrivals, faults) = run_voting(vec![
            FaultPlan::healthy(),
            FaultPlan::fail_stop_at(TimeNs::from_secs(2)),
            FaultPlan::healthy(),
        ]);
        assert_eq!(arrivals.len(), 150, "2-of-3 quorum still delivers");
        let f = faults[1].expect("dead replica latched");
        assert_eq!(f.cause, VoteFaultCause::Divergence);
    }
}
