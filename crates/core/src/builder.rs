//! Construction of reference and duplicated process networks (paper Fig. 1).
//!
//! Given the interface timing models (Table 1), the analysis of §3.4
//! produces a [`SizingReport`]; this module assembles the corresponding
//! runnable networks:
//!
//! * the **reference** network: `producer → F_P → subnetwork → F_C →
//!   consumer`;
//! * the **duplicated** network: `producer → replicator → {R₁, R₂} →
//!   selector → consumer`, with fault plans attached to the replicas.
//!
//! The critical subnetwork itself is supplied by a [`ReplicaFactory`] — a
//! single jittered stage for the synthetic experiments, or a full
//! application pipeline (MJPEG / ADPCM / H.264 in `rtft-apps`).

use crate::fault::{FaultPlan, FaultTrigger, FaultyProcess};
use crate::obs::DetectionObs;
use crate::replicator::{FaultRecord, Replicator, ReplicatorConfig};
use crate::selector::{Selector, SelectorConfig, SelectorFaultRecord};
use rtft_kpn::{
    ChannelId, Fifo, Network, NodeId, Payload, PjdShaper, PjdSink, PjdSource, PortId, Transform,
};
use rtft_obs::{HealthModel, MetricsRegistry};
use rtft_rtc::sizing::{DuplicationModel, SizingReport};
use rtft_rtc::{CurveAnalysisError, PjdModel, TimeNs};
use std::sync::Arc;

/// Shared payload generator: maps a sequence number to token content.
pub type PayloadGenerator = Arc<dyn Fn(u64) -> Payload + Send + Sync>;

/// Builds the critical subnetwork of one replica between two ports.
///
/// Implementations add processes (and any internal channels) to `net` such
/// that tokens flow from `input` to `output`. The `fault` plan must be
/// attached to exactly one process of the subnetwork (conventionally the
/// first stage, so a fail-stop halts both consumption and production).
pub trait ReplicaFactory {
    /// Wires one replica; returns the ids of the processes added.
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId>;
}

/// The simplest replica: a fixed-service transform stage followed by a
/// [`PjdShaper`] imposing the replica's Table 1 output model — the
/// paper's "design diversity … captured by different jitter values".
///
/// The shaper (rather than per-token service jitter) is essential: service
/// jitter larger than the period would accumulate backlog and violate the
/// declared arrival curves, producing divergence false positives. The
/// shaper jitters each token against the nominal schedule instead, so the
/// replica's output is a faithful ⟨P, J⟩ stream.
#[derive(Debug, Clone)]
pub struct JitterStageReplica {
    /// Fixed per-token service time of the compute stage.
    pub service: TimeNs,
    /// Per-replica output interface models (`α_{i,out}` from Table 1).
    /// The model's `delay` field is the shaper's schedule offset and must
    /// cover `service` plus the producer jitter.
    pub out_model: [PjdModel; 2],
    /// Per-replica RNG seeds.
    pub seeds: [u64; 2],
}

impl JitterStageReplica {
    /// Builds the factory from a duplication model: service time one tenth
    /// of the period, shaper offset `service + producer jitter + 1 ms`.
    pub fn from_model(model: &DuplicationModel) -> Self {
        let service = model.producer.period / 10;
        let offset = service + model.producer.jitter + TimeNs::from_ms(1);
        JitterStageReplica {
            service,
            out_model: [
                model.replica_out[0].with_delay(offset),
                model.replica_out[1].with_delay(offset),
            ],
            seeds: [11, 22],
        }
    }

    /// Replaces the per-replica seeds.
    pub fn with_seeds(mut self, seeds: [u64; 2]) -> Self {
        self.seeds = seeds;
        self
    }
}

impl ReplicaFactory for JitterStageReplica {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        let internal = net.add_channel(Fifo::new(format!("r{replica}.shape"), 4));
        let stage = Transform::new(
            format!("replica{replica}.stage"),
            input,
            PortId::of(internal),
            self.service,
            TimeNs::ZERO,
            self.seeds[replica],
            |p| p,
        );
        let stage_id = net.add_process(FaultyProcess::new(stage, fault));
        let shaper = PjdShaper::new(
            format!("replica{replica}.shaper"),
            PortId::of(internal),
            output,
            self.out_model[replica],
            self.seeds[replica].wrapping_add(0x5eed),
        );
        let shaper_id = net.add_process(shaper);
        vec![stage_id, shaper_id]
    }
}

/// Everything needed to build (and later inspect) an experiment network.
#[derive(Clone)]
pub struct DuplicationConfig {
    /// Interface timing models.
    pub model: DuplicationModel,
    /// Derived queue parameters (§3.4). Usually
    /// [`SizingReport::analyze`]`(&model)`, but overridable for ablations.
    pub sizing: SizingReport,
    /// Number of tokens the producer emits (`None` = unbounded).
    pub token_count: Option<u64>,
    /// RNG seeds: producer, consumer.
    pub seeds: (u64, u64),
    /// Fault plans, one per replica.
    pub faults: [FaultPlan; 2],
    /// Token payload generator.
    pub payload: PayloadGenerator,
}

impl std::fmt::Debug for DuplicationConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuplicationConfig")
            .field("model", &self.model)
            .field("sizing", &self.sizing)
            .field("token_count", &self.token_count)
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl DuplicationConfig {
    /// Builds a config from a timing model, running the §3.4 analysis.
    ///
    /// Defaults: empty payloads, seeds `(1, 2)`, healthy replicas,
    /// unbounded token count.
    ///
    /// # Errors
    ///
    /// Propagates [`CurveAnalysisError`] from the sizing analysis if the
    /// model's rates diverge.
    pub fn from_model(model: DuplicationModel) -> Result<Self, CurveAnalysisError> {
        let sizing = SizingReport::analyze(&model)?;
        Ok(DuplicationConfig {
            model,
            sizing,
            token_count: None,
            seeds: (1, 2),
            faults: [FaultPlan::healthy(), FaultPlan::healthy()],
            payload: Arc::new(|_| Payload::Empty),
        })
    }

    /// Sets the number of tokens the producer emits.
    pub fn with_token_count(mut self, n: u64) -> Self {
        self.token_count = Some(n);
        self
    }

    /// Sets the producer/consumer seeds.
    pub fn with_seeds(mut self, producer: u64, consumer: u64) -> Self {
        self.seeds = (producer, consumer);
        self
    }

    /// Sets the fault plan of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn with_fault(mut self, i: usize, plan: FaultPlan) -> Self {
        self.faults[i] = plan;
        self
    }

    /// Sets the payload generator.
    pub fn with_payload(mut self, payload: PayloadGenerator) -> Self {
        self.payload = payload;
        self
    }

    /// A copy of this config with every fault plan cleared — the template
    /// for a *replacement run* after a replica was latched faulty (the
    /// fleet executor re-spawns the job from its template with fresh,
    /// healthy replicas).
    pub fn healed(&self) -> Self {
        let mut cfg = self.clone();
        cfg.faults = [FaultPlan::healthy(), FaultPlan::healthy()];
        cfg
    }
}

/// Ids of the interesting pieces of a built duplicated network.
#[derive(Debug, Clone)]
pub struct DuplicatedIds {
    /// The replicator channel.
    pub replicator: ChannelId,
    /// The selector channel.
    pub selector: ChannelId,
    /// The producer process.
    pub producer: NodeId,
    /// The consumer process (a [`PjdSink`]).
    pub consumer: NodeId,
    /// The processes of each replica.
    pub replicas: [Vec<NodeId>; 2],
}

impl DuplicatedIds {
    /// The replicator's fault records after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected replicator (ids
    /// from a different build).
    pub fn replicator_faults(&self, net: &Network) -> [Option<FaultRecord>; 2] {
        let r = net
            .channel_as::<Replicator>(self.replicator)
            .expect("replicator channel");
        [r.fault(0), r.fault(1)]
    }

    /// The selector's fault records after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected selector.
    pub fn selector_faults(&self, net: &Network) -> [Option<SelectorFaultRecord>; 2] {
        let s = net
            .channel_as::<Selector>(self.selector)
            .expect("selector channel");
        [s.fault(0), s.fault(1)]
    }

    /// The consumer's recorded arrivals after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected sink.
    pub fn consumer_arrivals<'a>(&self, net: &'a Network) -> &'a [(TimeNs, u64)] {
        net.process_as::<PjdSink>(self.consumer)
            .expect("consumer sink")
            .arrivals()
    }
}

/// Attaches observability to a freshly built duplicated network: a
/// two-replica [`HealthModel`] fed by both arbitration channels, plus the
/// `core.detections` / `core.selector.discarded` counters in `registry`.
///
/// Time-triggered fault plans in `cfg` are pre-registered as injection
/// instants, so the health model's detection-latency histogram measures
/// `detected_at − injected_at` without the runtime ever reading a clock
/// (both instants are virtual times the DES already carries).
///
/// Call between [`build_duplicated`] and engine construction:
///
/// ```
/// use rtft_core::{build_duplicated, instrument_duplicated, DuplicationConfig,
///                 FaultPlan, JitterStageReplica};
/// use rtft_kpn::Engine;
/// use rtft_obs::{MetricsRegistry, ReplicaStatus};
/// use rtft_rtc::sizing::DuplicationModel;
/// use rtft_rtc::{PjdModel, TimeNs};
///
/// let model = DuplicationModel::symmetric(
///     PjdModel::from_ms(30.0, 2.0, 0.0),
///     PjdModel::from_ms(30.0, 2.0, 90.0),
///     [PjdModel::from_ms(30.0, 5.0, 0.0), PjdModel::from_ms(30.0, 30.0, 0.0)],
/// );
/// let cfg = DuplicationConfig::from_model(model)?
///     .with_token_count(60)
///     .with_fault(0, FaultPlan::fail_stop_at(TimeNs::from_secs(1)));
/// let factory = JitterStageReplica::from_model(&cfg.model);
/// let (mut net, ids) = build_duplicated(&cfg, &factory);
/// let registry = MetricsRegistry::new();
/// let health = instrument_duplicated(&mut net, &ids, &cfg, &registry);
/// let mut engine = Engine::new(net).with_metrics(&registry);
/// engine.run_until(TimeNs::from_secs(20));
/// assert_eq!(health.status(0), ReplicaStatus::Faulty);
/// assert_eq!(health.status(1), ReplicaStatus::Healthy);
/// # Ok::<(), rtft_rtc::CurveAnalysisError>(())
/// ```
///
/// # Panics
///
/// Panics if `ids` do not match `net` (channels from a different build).
pub fn instrument_duplicated(
    net: &mut Network,
    ids: &DuplicatedIds,
    cfg: &DuplicationConfig,
    registry: &MetricsRegistry,
) -> HealthModel {
    let health = HealthModel::new(2);
    for (i, plan) in cfg.faults.iter().enumerate() {
        if let FaultTrigger::AtTime(t) = plan.trigger {
            health.note_fault_injected(i, t.as_ns());
        }
    }
    let obs = DetectionObs::new(registry, health.clone());
    net.channel_mut(ids.replicator)
        .as_any_mut()
        .downcast_mut::<Replicator>()
        .expect("replicator channel")
        .attach_obs(obs.clone());
    net.channel_mut(ids.selector)
        .as_any_mut()
        .downcast_mut::<Selector>()
        .expect("selector channel")
        .attach_obs(obs);
    health
}

/// Builds the duplicated process network of Fig. 1 (bottom).
///
/// Queue capacities and the divergence thresholds come from
/// `cfg.sizing`; the consumer is offset by its model's `delay` so the
/// replicas can establish the initial fill `F_{C,0}` before the first read
/// (eq. (4)).
pub fn build_duplicated(
    cfg: &DuplicationConfig,
    factory: &dyn ReplicaFactory,
) -> (Network, DuplicatedIds) {
    let mut net = Network::new();
    let sizing = &cfg.sizing;

    let replicator = net.add_channel(Replicator::new(
        "replicator",
        ReplicatorConfig::new([
            sizing.replicator_capacity[0] as usize,
            sizing.replicator_capacity[1] as usize,
        ])
        .with_divergence_threshold(sizing.replicator_threshold),
    ));
    let selector = net.add_channel(Selector::new(
        "selector",
        SelectorConfig::new(
            [
                sizing.selector_capacity[0] as usize,
                sizing.selector_capacity[1] as usize,
            ],
            sizing.selector_threshold,
        ),
    ));

    let payload = Arc::clone(&cfg.payload);
    let producer = net.add_process(PjdSource::new(
        "producer",
        PortId::of(replicator),
        cfg.model.producer,
        cfg.seeds.0,
        cfg.token_count,
        move |seq| payload(seq),
    ));

    let replicas = [
        factory.build(
            &mut net,
            PortId::iface(replicator, 0),
            PortId::iface(selector, 0),
            0,
            cfg.faults[0],
        ),
        factory.build(
            &mut net,
            PortId::iface(replicator, 1),
            PortId::iface(selector, 1),
            1,
            cfg.faults[1],
        ),
    ];

    let consumer = net.add_process(PjdSink::new(
        "consumer",
        PortId::of(selector),
        cfg.model.consumer,
        cfg.seeds.1,
        cfg.token_count,
    ));

    (
        net,
        DuplicatedIds {
            replicator,
            selector,
            producer,
            consumer,
            replicas,
        },
    )
}

/// Ids of the interesting pieces of a built reference network.
#[derive(Debug, Clone)]
pub struct ReferenceIds {
    /// Producer-side FIFO `F_P`.
    pub input_fifo: ChannelId,
    /// Consumer-side FIFO `F_C`.
    pub output_fifo: ChannelId,
    /// The producer process.
    pub producer: NodeId,
    /// The consumer process (a [`PjdSink`]).
    pub consumer: NodeId,
    /// The subnetwork's processes.
    pub subnetwork: Vec<NodeId>,
}

impl ReferenceIds {
    /// The consumer's recorded arrivals after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected sink.
    pub fn consumer_arrivals<'a>(&self, net: &'a Network) -> &'a [(TimeNs, u64)] {
        net.process_as::<PjdSink>(self.consumer)
            .expect("consumer sink")
            .arrivals()
    }
}

/// Builds the un-replicated reference network of Fig. 1 (top), using
/// replica 0's factory slot as "the" subnetwork (healthy, no fault plan).
///
/// `F_P` and `F_C` take the larger of the two per-replica capacities so the
/// same sizing report serves both networks.
pub fn build_reference(
    cfg: &DuplicationConfig,
    factory: &dyn ReplicaFactory,
) -> (Network, ReferenceIds) {
    let mut net = Network::new();
    let sizing = &cfg.sizing;

    let f_p = sizing.replicator_capacity[0].max(sizing.replicator_capacity[1]) as usize;
    let f_c = sizing.selector_queue_size() as usize;
    let input_fifo = net.add_channel(Fifo::new("F_P", f_p));
    let output_fifo = net.add_channel(Fifo::new("F_C", f_c));

    let payload = Arc::clone(&cfg.payload);
    let producer = net.add_process(PjdSource::new(
        "producer",
        PortId::of(input_fifo),
        cfg.model.producer,
        cfg.seeds.0,
        cfg.token_count,
        move |seq| payload(seq),
    ));
    let subnetwork = factory.build(
        &mut net,
        PortId::of(input_fifo),
        PortId::of(output_fifo),
        0,
        FaultPlan::healthy(),
    );
    let consumer = net.add_process(PjdSink::new(
        "consumer",
        PortId::of(output_fifo),
        cfg.model.consumer,
        cfg.seeds.1,
        cfg.token_count,
    ));

    (
        net,
        ReferenceIds {
            input_fifo,
            output_fifo,
            producer,
            consumer,
            subnetwork,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::{Engine, RunOutcome};
    use rtft_rtc::PjdModel;

    fn mjpeg_like_config() -> DuplicationConfig {
        let model = DuplicationModel::symmetric(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            // Consumer delayed one period to establish the initial fill.
            PjdModel::from_ms(30.0, 2.0, 90.0),
            [
                PjdModel::from_ms(30.0, 5.0, 0.0),
                PjdModel::from_ms(30.0, 30.0, 0.0),
            ],
        );
        DuplicationConfig::from_model(model)
            .expect("bounded model")
            .with_token_count(200)
            .with_payload(Arc::new(Payload::U64))
    }

    fn factory() -> JitterStageReplica {
        JitterStageReplica::from_model(&mjpeg_like_config().model)
    }

    #[test]
    fn fault_free_duplicated_network_delivers_everything() {
        let cfg = mjpeg_like_config();
        let (net, ids) = build_duplicated(&cfg, &factory());
        let mut engine = Engine::new(net);
        let outcome = engine.run_until(TimeNs::from_secs(30));
        assert!(
            matches!(
                outcome,
                RunOutcome::Completed { .. } | RunOutcome::Quiescent { .. }
            ),
            "{outcome:?}"
        );
        let arrivals = ids.consumer_arrivals(engine.network());
        assert_eq!(arrivals.len(), 200);
        // No fault detected anywhere.
        assert_eq!(ids.replicator_faults(engine.network()), [None, None]);
        assert_eq!(ids.selector_faults(engine.network()), [None, None]);
    }

    #[test]
    fn fault_free_output_matches_reference() {
        let cfg = mjpeg_like_config();
        let (dup_net, dup_ids) = build_duplicated(&cfg, &factory());
        let (ref_net, ref_ids) = build_reference(&cfg, &factory());

        let mut dup = Engine::new(dup_net);
        dup.run_until(TimeNs::from_secs(30));
        let mut reference = Engine::new(ref_net);
        reference.run_until(TimeNs::from_secs(30));

        let dup_vals: Vec<u64> = dup_ids
            .consumer_arrivals(dup.network())
            .iter()
            .map(|(_, d)| *d)
            .collect();
        let ref_vals: Vec<u64> = ref_ids
            .consumer_arrivals(reference.network())
            .iter()
            .map(|(_, d)| *d)
            .collect();
        assert_eq!(dup_vals, ref_vals, "Theorem 2: value sequences must match");
    }

    #[test]
    fn fail_stop_is_detected_and_masked() {
        let fault_at = TimeNs::from_secs(3);
        let cfg = mjpeg_like_config().with_fault(0, FaultPlan::fail_stop_at(fault_at));
        let (net, ids) = build_duplicated(&cfg, &factory());
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));

        // All tokens still delivered (fault masked by replica 1).
        let arrivals = ids.consumer_arrivals(engine.network());
        assert_eq!(arrivals.len(), 200, "consumer must not lose tokens");

        // Replica 0 flagged at one or both sites; replica 1 never.
        let rep = ids.replicator_faults(engine.network());
        let sel = ids.selector_faults(engine.network());
        assert!(
            rep[0].is_some() || sel[0].is_some(),
            "fault must be detected"
        );
        assert!(
            rep[1].is_none() && sel[1].is_none(),
            "healthy replica must not be flagged"
        );

        // Detection happened after the injection, within a plausible bound.
        for f in rep[0]
            .iter()
            .map(|f| f.at)
            .chain(sel[0].iter().map(|f| f.at))
        {
            assert!(f >= fault_at, "detected at {f} before injection {fault_at}");
            assert!(
                f <= fault_at + TimeNs::from_secs(1),
                "detection latency implausibly large: {}",
                f - fault_at
            );
        }
    }

    #[test]
    fn values_survive_fault_identical_to_reference() {
        let cfg = mjpeg_like_config().with_fault(1, FaultPlan::fail_stop_at(TimeNs::from_secs(2)));
        let (dup_net, dup_ids) = build_duplicated(&cfg, &factory());
        let (ref_net, ref_ids) = build_reference(&cfg, &factory());

        let mut dup = Engine::new(dup_net);
        dup.run_until(TimeNs::from_secs(30));
        let mut reference = Engine::new(ref_net);
        reference.run_until(TimeNs::from_secs(30));

        let dup_vals: Vec<u64> = dup_ids
            .consumer_arrivals(dup.network())
            .iter()
            .map(|(_, d)| *d)
            .collect();
        let ref_vals: Vec<u64> = ref_ids
            .consumer_arrivals(reference.network())
            .iter()
            .map(|(_, d)| *d)
            .collect();
        assert_eq!(dup_vals, ref_vals, "Theorem 2 under a single fault");
    }

    #[test]
    fn observed_fill_stays_within_theoretical_capacity() {
        let cfg = mjpeg_like_config();
        let (net, ids) = build_duplicated(&cfg, &factory());
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(30));
        let net = engine.network();
        for i in 0..2 {
            let max_fill = net.channel(ids.replicator).max_fill(i);
            let cap = cfg.sizing.replicator_capacity[i] as usize;
            assert!(
                max_fill <= cap,
                "replicator queue {i}: fill {max_fill} > cap {cap}"
            );
        }
        let sel_fill = net.channel(ids.selector).max_fill(0);
        assert!(sel_fill <= cfg.sizing.selector_queue_size() as usize);
    }
}
