//! The selector channel (paper §3.1 and §3.3).
//!
//! A selector merges the two replicas' output streams back into a single
//! consumer stream. It has **two write interfaces** (the replicas) and
//! **one read interface** (the consumer), but only **one physical FIFO** of
//! size `max(|S₁|, |S₂|)` plus two *virtual queues* realised as the
//! `space₁`/`space₂` counters (§3.1 selector rules 1–3):
//!
//! * a read pops the FIFO, decrements `fill`, increments *both* spaces;
//! * a write on interface `i` blocks iff `space_i == 0`; otherwise, if
//!   `space_i ≤ space_j` the token is the **first of its duplicate pair**
//!   and is enqueued, else it is the late duplicate and is discarded —
//!   either way `space_i` is decremented.
//!
//! Lemma 1 (replica isolation) is structural here: interface `j` never
//! touches `space_i`, so back-pressure on one replica cannot be caused by
//! the other.
//!
//! Fault detection (§3.3) adds two clock-free rules:
//!
//! * **stall** — replica `i` is faulty when `space_i` exceeds
//!   `|S_i| + (D − 1)`. (The paper states the bound as `space_i > |S_i|`;
//!   fault-free runs can legitimately reach `|S_i| + D − 1` because the
//!   consumer may drain tokens the *other* replica supplied first, so we
//!   add the divergence slack to keep the no-false-positive guarantee —
//!   see DESIGN.md.)
//! * **divergence** — when the difference in tokens received over the two
//!   interfaces reaches `D` (eq. (5)), the replica that is behind is
//!   faulty.
//!
//! After a latch the healthy interface feeds the FIFO alone, and writes
//! arriving from the latched replica are accepted-and-discarded so a
//! limping replica cannot block.

use crate::arbitration::{ArbFault, ArbFaultCause, Arbiter};
use crate::obs::DetectionObs;
use rtft_kpn::{ChannelBehavior, ReadOutcome, Token, WriteOutcome};
use rtft_obs::DetectionSite;
use rtft_rtc::TimeNs;
use std::any::Any;
use std::collections::VecDeque;

/// Which detection rule latched a replica faulty at the selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorFaultCause {
    /// `space_i` exceeded `|S_i| + (D − 1)`: the replica stalled while the
    /// consumer kept draining.
    Stall,
    /// The received-token divergence reached `D`.
    Divergence,
}

/// A latched fault-detection record at the selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectorFaultRecord {
    /// Time of the operation during which the fault was detected.
    pub at: TimeNs,
    /// Which rule fired.
    pub cause: SelectorFaultCause,
}

/// Configuration of a [`Selector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectorConfig {
    /// Virtual-queue capacities `|S₁|, |S₂|`.
    pub capacity: [usize; 2],
    /// Divergence threshold `D` (eq. (5)); `None` disables the divergence
    /// detector.
    pub divergence_threshold: Option<u64>,
    /// Stall slack: replica `i` is flagged when
    /// `space_i > |S_i| + stall_slack`. `None` disables the stall detector.
    /// The no-false-positive choice is `D − 1` (see module docs).
    pub stall_slack: Option<u64>,
}

impl SelectorConfig {
    /// Detection-enabled configuration with divergence threshold `d` and
    /// the matching no-false-positive stall slack `d − 1`.
    pub fn new(capacity: [usize; 2], d: u64) -> Self {
        SelectorConfig {
            capacity,
            divergence_threshold: Some(d),
            stall_slack: Some(d.saturating_sub(1)),
        }
    }

    /// Stall detection only (§3.3 "first method" ablation).
    pub fn stall_only(capacity: [usize; 2], slack: u64) -> Self {
        SelectorConfig {
            capacity,
            divergence_threshold: None,
            stall_slack: Some(slack),
        }
    }

    /// Disables all fault detection (ablation: bare §3.1 semantics).
    pub fn without_detection(capacity: [usize; 2]) -> Self {
        SelectorConfig {
            capacity,
            divergence_threshold: None,
            stall_slack: None,
        }
    }

    /// Disables only the stall detector (ablation E9).
    pub fn without_stall_detection(mut self) -> Self {
        self.stall_slack = None;
        self
    }
}

/// The selector channel state machine.
///
/// # Examples
///
/// ```
/// use rtft_core::{Selector, SelectorConfig};
/// use rtft_kpn::{ChannelBehavior, Payload, ReadOutcome, Token, WriteOutcome};
/// use rtft_rtc::TimeNs;
///
/// let mut s = Selector::new("sel", SelectorConfig::new([4, 4], 3));
/// let t0 = TimeNs::ZERO;
/// let tok = |seq| Token::new(seq, t0, Payload::U64(seq));
/// // Replica 0 delivers first: enqueued. Replica 1's duplicate: discarded.
/// assert_eq!(s.try_write(0, tok(0), t0), WriteOutcome::Accepted);
/// assert_eq!(s.try_write(1, tok(0), t0), WriteOutcome::AcceptedDropped);
/// // The consumer sees the pair exactly once.
/// assert!(matches!(s.try_read(0, t0), ReadOutcome::Token(t) if t.seq == 0));
/// assert_eq!(s.try_read(0, t0), ReadOutcome::Blocked);
/// ```
#[derive(Debug)]
pub struct Selector {
    name: String,
    config: SelectorConfig,
    queue: VecDeque<Token>,
    /// The paper's `space_i` counters. They exceed `|S_i|` while a replica
    /// stalls, which is exactly what the stall detector watches.
    space: [u64; 2],
    max_fill: usize,
    /// Tokens received per write interface (divergence detector input).
    received: [u64; 2],
    /// Tokens enqueued / discarded (statistics).
    enqueued: u64,
    discarded: u64,
    reads: u64,
    fault: [Option<SelectorFaultRecord>; 2],
    obs: Option<DetectionObs>,
}

impl Selector {
    /// Creates a selector; the physical FIFO capacity is
    /// `max(|S₁|, |S₂|)` per §3.1 selector rule 1.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(name: impl Into<String>, config: SelectorConfig) -> Self {
        assert!(
            config.capacity[0] > 0 && config.capacity[1] > 0,
            "selector virtual-queue capacities must be positive"
        );
        let physical = config.capacity[0].max(config.capacity[1]);
        Selector {
            name: name.into(),
            config,
            queue: VecDeque::with_capacity(physical),
            space: [config.capacity[0] as u64, config.capacity[1] as u64],
            max_fill: 0,
            received: [0, 0],
            enqueued: 0,
            discarded: 0,
            reads: 0,
            fault: [None, None],
            obs: None,
        }
    }

    /// Attaches observability: each fault latch is mirrored into the
    /// handles' [`HealthModel`](rtft_obs::HealthModel) and every late
    /// duplicate suppressed bumps the discard counter. Detection
    /// semantics are unchanged — the latch stays the source of truth.
    pub fn attach_obs(&mut self, obs: DetectionObs) {
        self.obs = Some(obs);
    }

    /// The selector's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fault record for replica `i`, if detected.
    pub fn fault(&self, i: usize) -> Option<SelectorFaultRecord> {
        self.fault[i]
    }

    /// `true` if replica `i` is latched faulty.
    pub fn is_faulty(&self, i: usize) -> bool {
        self.fault[i].is_some()
    }

    /// Current `space_i` counter.
    pub fn space(&self, i: usize) -> u64 {
        self.space[i]
    }

    /// Tokens received over interface `i` so far.
    pub fn received(&self, i: usize) -> u64 {
        self.received[i]
    }

    /// Tokens enqueued to the consumer so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Late duplicates discarded so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Successful consumer reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bytes of framework state (fault-detection bookkeeping), excluding
    /// token storage.
    pub fn state_bytes() -> usize {
        std::mem::size_of::<Selector>()
    }

    fn latch(&mut self, i: usize, at: TimeNs, cause: SelectorFaultCause) {
        if self.fault[i].is_none() && self.fault[1 - i].is_none() {
            self.fault[i] = Some(SelectorFaultRecord { at, cause });
            if let Some(obs) = &self.obs {
                let site = match cause {
                    SelectorFaultCause::Stall => DetectionSite::SelectorStall,
                    SelectorFaultCause::Divergence => DetectionSite::SelectorDivergence,
                };
                obs.on_detection(i, site, at);
            }
        }
    }

    fn check_divergence(&mut self, now: TimeNs) {
        let Some(d) = self.config.divergence_threshold else {
            return;
        };
        if self.fault[0].is_some() || self.fault[1].is_some() {
            return;
        }
        let (a, b) = (self.received[0], self.received[1]);
        if a.abs_diff(b) >= d {
            let behind = if a < b { 0 } else { 1 };
            self.latch(behind, now, SelectorFaultCause::Divergence);
        }
    }

    fn check_stall(&mut self, now: TimeNs) {
        let Some(slack) = self.config.stall_slack else {
            return;
        };
        if self.fault[0].is_some() || self.fault[1].is_some() {
            return;
        }
        for i in 0..2 {
            if self.space[i] > self.config.capacity[i] as u64 + slack {
                self.latch(i, now, SelectorFaultCause::Stall);
                return;
            }
        }
    }
}

impl ChannelBehavior for Selector {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        assert!(iface < 2, "selector has two write interfaces");
        let other = 1 - iface;

        if self.fault[iface].is_some() {
            // Tokens from a latched replica are accepted-and-discarded so a
            // degraded replica cannot block itself (and through nothing
            // else, per Lemma 1, anyone else).
            self.discarded += 1;
            if let Some(obs) = &self.obs {
                obs.on_duplicate_discarded();
            }
            return WriteOutcome::AcceptedDropped;
        }

        if self.fault[other].is_some() {
            // Sole healthy source: every token is first-of-pair.
            if self.queue.len() >= self.config.capacity[iface].max(self.config.capacity[other]) {
                return WriteOutcome::Blocked(token);
            }
            self.queue.push_back(token);
            self.max_fill = self.max_fill.max(self.queue.len());
            self.space[iface] = self.space[iface].saturating_sub(1);
            self.received[iface] += 1;
            self.enqueued += 1;
            return WriteOutcome::Accepted;
        }

        // §3.1 selector rule 3. The first-of-pair decision is made on the
        // received-token counters: interface `i` supplies the first token
        // of its pair iff it has received no more pairs than the other
        // interface. This is the paper's `space_1 ≤ space_2` comparison
        // normalised by the virtual-queue capacities — for |S₁| = |S₂| the
        // two are identical, and for asymmetric capacities the raw space
        // comparison misclassifies the first |S₂|−|S₁| unmatched tokens of
        // the lagging replica after a leader fault (token loss); see
        // DESIGN.md §5.
        if self.space[iface] == 0 {
            return WriteOutcome::Blocked(token);
        }
        let outcome = if self.received[iface] >= self.received[other] {
            self.queue.push_back(token);
            self.max_fill = self.max_fill.max(self.queue.len());
            self.enqueued += 1;
            WriteOutcome::Accepted
        } else {
            self.discarded += 1;
            if let Some(obs) = &self.obs {
                obs.on_duplicate_discarded();
            }
            WriteOutcome::AcceptedDropped
        };
        self.space[iface] -= 1;
        self.received[iface] += 1;
        self.check_divergence(now);
        outcome
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        assert_eq!(iface, 0, "selector has a single read interface");
        match self.queue.pop_front() {
            Some(t) => {
                self.reads += 1;
                self.space[0] += 1;
                self.space[1] += 1;
                self.check_stall(now);
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn write_ifaces(&self) -> usize {
        2
    }

    fn read_ifaces(&self) -> usize {
        1
    }

    fn fill(&self, _iface: usize) -> usize {
        self.queue.len()
    }

    fn capacity(&self, iface: usize) -> usize {
        self.config.capacity[iface.min(1)]
    }

    fn max_fill(&self, _iface: usize) -> usize {
        self.max_fill
    }

    fn debug_name(&self) -> Option<&str> {
        Some(&self.name)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Arbiter for Selector {
    fn arbiter_name(&self) -> &str {
        self.name()
    }

    fn replica_ifaces(&self) -> usize {
        2
    }

    fn latched(&self, i: usize) -> Option<ArbFault> {
        self.fault[i].map(|f| ArbFault {
            at: f.at,
            cause: match f.cause {
                SelectorFaultCause::Stall => ArbFaultCause::Stall,
                SelectorFaultCause::Divergence => ArbFaultCause::Divergence,
            },
            group: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::Payload;

    fn tok(seq: u64) -> Token {
        Token::new(seq, TimeNs::from_ms(seq), Payload::U64(seq))
    }

    fn selector(caps: [usize; 2], d: u64) -> Selector {
        Selector::new("s", SelectorConfig::new(caps, d))
    }

    #[test]
    fn first_of_pair_wins_either_order() {
        // Replica 0 first for pair 0; replica 1 first for pair 1.
        let mut s = selector([4, 4], 3);
        let t = TimeNs::ZERO;
        assert_eq!(s.try_write(0, tok(0), t), WriteOutcome::Accepted);
        assert_eq!(s.try_write(1, tok(0), t), WriteOutcome::AcceptedDropped);
        assert_eq!(s.try_write(1, tok(1), t), WriteOutcome::Accepted);
        assert_eq!(s.try_write(0, tok(1), t), WriteOutcome::AcceptedDropped);
        let seqs: Vec<u64> = (0..2)
            .map(|_| match s.try_read(0, t) {
                ReadOutcome::Token(t) => t.seq,
                ReadOutcome::Blocked => panic!(),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(s.enqueued(), 2);
        assert_eq!(s.discarded(), 2);
    }

    #[test]
    fn lemma1_isolation_interface_j_never_touches_space_i() {
        let mut s = selector([4, 4], 10);
        let before = s.space(0);
        for seq in 0..3 {
            s.try_write(1, tok(seq), TimeNs::ZERO);
        }
        assert_eq!(
            s.space(0),
            before,
            "writes on interface 1 must not change space_0"
        );
    }

    #[test]
    fn write_blocks_when_virtual_queue_full() {
        let mut s = selector([2, 4], 10);
        assert_eq!(s.try_write(0, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(s.try_write(0, tok(1), TimeNs::ZERO), WriteOutcome::Accepted);
        // space_0 exhausted, consumer hasn't read.
        assert!(matches!(
            s.try_write(0, tok(2), TimeNs::ZERO),
            WriteOutcome::Blocked(_)
        ));
        // A read frees one slot.
        assert!(matches!(s.try_read(0, TimeNs::ZERO), ReadOutcome::Token(_)));
        assert_eq!(s.try_write(0, tok(2), TimeNs::ZERO), WriteOutcome::Accepted);
    }

    #[test]
    fn divergence_latches_the_lagging_replica() {
        let mut s = selector([8, 8], 3);
        // Replica 0 delivers 3 tokens; replica 1 none → divergence hits 3.
        s.try_write(0, tok(0), TimeNs::from_ms(1));
        s.try_write(0, tok(1), TimeNs::from_ms(2));
        assert!(!s.is_faulty(1));
        s.try_write(0, tok(2), TimeNs::from_ms(3));
        let f = s.fault(1).expect("latched");
        assert_eq!(f.cause, SelectorFaultCause::Divergence);
        assert_eq!(f.at, TimeNs::from_ms(3));
        assert!(!s.is_faulty(0));
    }

    #[test]
    fn post_fault_healthy_replica_feeds_alone() {
        let mut s = selector([4, 4], 2);
        s.try_write(0, tok(0), TimeNs::ZERO);
        s.try_write(0, tok(1), TimeNs::ZERO); // divergence 2 → replica 1 latched
        assert!(s.is_faulty(1));
        // Healthy replica keeps enqueueing every token (no pair logic).
        assert_eq!(s.try_write(0, tok(2), TimeNs::ZERO), WriteOutcome::Accepted);
        // Latched replica's stragglers are swallowed.
        assert_eq!(
            s.try_write(1, tok(0), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        // Consumer sees the full sequence once.
        let mut seqs = Vec::new();
        while let ReadOutcome::Token(t) = s.try_read(0, TimeNs::ZERO) {
            seqs.push(t.seq);
        }
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn stall_detector_fires_without_divergence_detector() {
        // Pure §3.3 "first method": divergence detection off, stall slack 2.
        let mut s = Selector::new("s", SelectorConfig::stall_only([2, 2], 2));
        // Replica 1 is dead; replica 0 supplies, consumer drains.
        // space_1 = 2 − 0 + reads; threshold: space_1 > |S_1| + 2 = 4,
        // i.e. the 3rd read flags replica 1.
        for seq in 0..3u64 {
            assert_eq!(
                s.try_write(0, tok(seq), TimeNs::from_ms(seq)),
                WriteOutcome::Accepted
            );
            assert!(matches!(
                s.try_read(0, TimeNs::from_ms(10 + seq)),
                ReadOutcome::Token(_)
            ));
        }
        let f = s.fault(1).expect("replica 1 flagged by stall rule");
        assert_eq!(f.cause, SelectorFaultCause::Stall);
        assert_eq!(f.at, TimeNs::from_ms(12));
        assert!(!s.is_faulty(0));
    }

    #[test]
    fn stall_slack_prevents_false_positive_from_pair_skew() {
        // Fault-free skew: replica 0 leads each pair by up to D−1 = 2.
        // With the paper's bare rule (slack 0) replica 1 would be flagged;
        // with slack D−1 it is not.
        let mut s = selector([4, 4], 3);
        for seq in 0..20u64 {
            // Replica 0 delivers pairs seq and seq+1 before replica 1
            // catches up on pair seq (skew ≤ 2 < D).
            assert_eq!(
                s.try_write(0, tok(seq), TimeNs::from_ms(seq)),
                WriteOutcome::Accepted
            );
            assert!(matches!(
                s.try_read(0, TimeNs::from_ms(seq)),
                ReadOutcome::Token(_)
            ));
            if seq >= 1 {
                assert_eq!(
                    s.try_write(1, tok(seq - 1), TimeNs::from_ms(seq)),
                    WriteOutcome::AcceptedDropped
                );
            }
        }
        assert!(
            !s.is_faulty(0) && !s.is_faulty(1),
            "skew within D must not latch"
        );
    }

    #[test]
    fn no_detection_config_never_latches() {
        let mut s = Selector::new("s", SelectorConfig::without_detection([2, 2]));
        for seq in 0..2u64 {
            s.try_write(0, tok(seq), TimeNs::ZERO);
            let _ = s.try_read(0, TimeNs::ZERO);
        }
        // Replica 0 far ahead, replica 1 silent: still no latch.
        assert!(!s.is_faulty(0) && !s.is_faulty(1));
        // And the bare semantics block once space_0 runs out… space_0 was
        // replenished by reads here, so exhaust it:
        s.try_write(0, tok(2), TimeNs::ZERO);
        s.try_write(0, tok(3), TimeNs::ZERO);
        assert!(matches!(
            s.try_write(0, tok(4), TimeNs::ZERO),
            WriteOutcome::Blocked(_)
        ));
    }

    #[test]
    fn read_blocks_on_empty() {
        let mut s = selector([2, 2], 2);
        assert_eq!(s.try_read(0, TimeNs::ZERO), ReadOutcome::Blocked);
    }

    #[test]
    fn only_one_replica_ever_latched() {
        let mut s = selector([8, 8], 2);
        s.try_write(0, tok(0), TimeNs::ZERO);
        s.try_write(0, tok(1), TimeNs::ZERO);
        assert!(s.is_faulty(1));
        // Even if replica 0 now stalls and replica 1 recovers, the single-
        // fault model keeps the first latch (the system is in failover).
        for _ in 0..20 {
            s.try_write(1, tok(99), TimeNs::ZERO);
        }
        assert!(!s.is_faulty(0));
        assert!(s.is_faulty(1));
    }

    #[test]
    fn state_footprint_is_small() {
        // The paper reports ~2.1 KB selector overhead (excluding tokens).
        assert!(
            Selector::state_bytes() < 2100,
            "{}",
            Selector::state_bytes()
        );
    }

    #[test]
    fn timestamps_flow_through_untouched() {
        let mut s = selector([4, 4], 3);
        let t = Token::new(0, TimeNs::from_ms(123), Payload::Empty);
        s.try_write(0, t, TimeNs::from_ms(200));
        match s.try_read(0, TimeNs::from_ms(201)) {
            ReadOutcome::Token(t) => assert_eq!(t.produced_at, TimeNs::from_ms(123)),
            ReadOutcome::Blocked => panic!(),
        }
    }
}
