//! Arbitration decoupled: *compare policy* × *replica count*.
//!
//! The paper's selector fuses two orthogonal concerns: **how many** replica
//! streams it merges, and **how** it decides which token of each duplicate
//! group reaches the consumer. The original `NSelector` / `VotingSelector`
//! implementations each re-carried the full counter ledger (received
//! counts, virtual-queue spaces, divergence threshold `D`, stall slack) and
//! differed only in the group-arbitration rule. This module pulls the two
//! apart:
//!
//! * [`ArbiterLedger`] — the replica-count-generic counter state shared by
//!   every selector: one virtual queue per replica, the eq. (5) divergence
//!   latch, the §3.3 stall latch, and the delivery queue. It never looks at
//!   token *values*.
//! * [`ComparePolicy`] — the pluggable arbitration rule. A policy sees each
//!   healthy replica's next token together with the ledger and decides what
//!   to deliver, what to discard, and which replicas to latch for
//!   value-level disagreement:
//!   - [`FirstOfGroup`] — the paper's timing arbitration (first of each
//!     duplicate group wins), used by `NSelector`;
//!   - `MajorityVote` (in [`voting`](crate::voting)) — digest quorum per
//!     group, used by `VotingSelector`;
//!   - `SampledCheck` (in [`hetero`](crate::hetero)) — full-rate main
//!     stream spot-checked every `k`-th token by a trusted checker, used by
//!     `HeteroSelector`.
//! * [`PolicySelector`] — the single channel implementation parameterised
//!   by the policy. `NSelector`, `VotingSelector`, and `HeteroSelector` are
//!   type aliases of its instantiations, so existing downcasts and APIs are
//!   untouched (the arbitration regression matrix pins their reports to the
//!   pre-refactor bytes).
//!
//! Every fault latch lands in the unified [`ArbFault`] record; the aliases
//! expose their historical record types ([`SelectorFaultRecord`],
//! `VoteFaultRecord`) through lossless conversions.
//!
//! [`SelectorFaultRecord`]: crate::SelectorFaultRecord

use rtft_kpn::{ChannelBehavior, ReadOutcome, Token, WriteOutcome};
use rtft_rtc::TimeNs;
use std::any::Any;
use std::collections::VecDeque;

/// Which detection rule latched a replica, across every compare policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbFaultCause {
    /// Received-token count fell `D` behind the healthy front-runner
    /// (eq. (5)).
    Divergence,
    /// Virtual-queue space overran capacity plus the stall slack (§3.3).
    Stall,
    /// The replica's token value disagreed with the policy's verdict
    /// (majority digest, or the trusted checker's recomputation).
    ValueMismatch,
}

/// A latched fault in the unified arbitration ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbFault {
    /// Virtual time of the latch.
    pub at: TimeNs,
    /// Detection rule that fired.
    pub cause: ArbFaultCause,
    /// Duplicate-group index of the disagreeing value (value faults only).
    pub group: Option<u64>,
}

/// The compare-policy-agnostic counter state of a selector: per-replica
/// received counts and virtual capacities, the shared delivery queue, and
/// the two counter-based timing detectors of §3.3/eq. (5).
#[derive(Debug)]
pub struct ArbiterLedger {
    name: String,
    queue: VecDeque<Token>,
    capacity: Vec<usize>,
    received: Vec<u64>,
    reads: u64,
    enqueued: u64,
    discarded: u64,
    max_fill: usize,
    fault: Vec<Option<ArbFault>>,
    threshold: u64,
    stall_slack: u64,
    stall_detect: bool,
}

impl ArbiterLedger {
    /// Creates a ledger with per-replica virtual capacities and divergence
    /// threshold `d` (stall slack `d − 1`).
    ///
    /// # Panics
    ///
    /// Panics on an empty capacity list, a zero capacity, or `d == 0`.
    pub fn new(name: impl Into<String>, capacity: Vec<usize>, d: u64) -> Self {
        assert!(!capacity.is_empty(), "need at least one replica interface");
        assert!(
            capacity.iter().all(|c| *c > 0),
            "capacities must be positive"
        );
        assert!(d > 0, "threshold must be positive");
        let n = capacity.len();
        ArbiterLedger {
            name: name.into(),
            queue: VecDeque::new(),
            capacity,
            received: vec![0; n],
            reads: 0,
            enqueued: 0,
            discarded: 0,
            max_fill: 0,
            fault: vec![None; n],
            threshold: d,
            stall_slack: d - 1,
            stall_detect: true,
        }
    }

    /// Disables the §3.3 stall latch. Required by policies whose interfaces
    /// legally run at different rates (sampled checking): the slow side's
    /// `space` counter grows without bound fault-free, so the stall rule
    /// would be an instant false positive.
    pub fn without_stall_detection(mut self) -> Self {
        self.stall_detect = false;
        self
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of replica (write) interfaces.
    pub fn replica_count(&self) -> usize {
        self.received.len()
    }

    /// Fault record of replica `i`, if latched.
    pub fn fault(&self, i: usize) -> Option<ArbFault> {
        self.fault[i]
    }

    /// Number of replicas still healthy.
    pub fn healthy_count(&self) -> usize {
        self.fault.iter().filter(|f| f.is_none()).count()
    }

    /// Indices of the replicas currently latched faulty, ascending.
    pub fn faulty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.fault
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| i))
    }

    /// Tokens delivered to the consumer so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Tokens consumed without delivery (duplicates, losing votes, latched
    /// writes) so far.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Consumer reads served so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Tokens received on interface `i` so far (the replica's next write is
    /// its entry for duplicate group `received(i)`).
    pub fn received(&self, i: usize) -> u64 {
        self.received[i]
    }

    /// The divergence threshold `D` the ledger latches on.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The `space_i` counter (capacity − received + reads).
    pub fn space(&self, i: usize) -> i64 {
        self.capacity[i] as i64 - self.received[i] as i64 + self.reads as i64
    }

    /// Highest received count over the healthy interfaces.
    pub fn healthy_max_received(&self) -> u64 {
        self.received
            .iter()
            .zip(&self.fault)
            .filter(|(_, f)| f.is_none())
            .map(|(r, _)| *r)
            .max()
            .unwrap_or(0)
    }

    /// Latches replica `i` (first cause wins; re-latching is a no-op).
    pub fn latch(&mut self, i: usize, cause: ArbFaultCause, group: Option<u64>, now: TimeNs) {
        if self.fault[i].is_none() {
            self.fault[i] = Some(ArbFault {
                at: now,
                cause,
                group,
            });
        }
    }

    /// Counts replica `i`'s next write and returns its duplicate-group
    /// index.
    pub fn note_received(&mut self, i: usize) -> u64 {
        let group = self.received[i];
        self.received[i] += 1;
        group
    }

    /// Pushes a token onto the consumer queue.
    pub fn deliver(&mut self, token: Token) {
        self.queue.push_back(token);
        self.max_fill = self.max_fill.max(self.queue.len());
        self.enqueued += 1;
    }

    /// Counts a token that was consumed without delivery.
    pub fn discard(&mut self) {
        self.discarded += 1;
    }

    /// The eq. (5) divergence latch: any healthy replica whose received
    /// count fell `D` behind the healthy front-runner. The front-runner
    /// itself — and the last healthy replica — are never latched.
    pub fn check_divergence(&mut self, now: TimeNs) {
        let max = self.healthy_max_received();
        for i in 0..self.received.len() {
            if self.fault[i].is_none()
                && self.healthy_count() > 1
                && max - self.received[i] >= self.threshold
            {
                self.fault[i] = Some(ArbFault {
                    at: now,
                    cause: ArbFaultCause::Divergence,
                    group: None,
                });
            }
        }
    }

    /// The §3.3 stall latch: any healthy replica whose virtual space
    /// overran its capacity plus the stall slack. A no-op when stall
    /// detection is disabled ([`Self::without_stall_detection`]).
    pub fn check_stall(&mut self, now: TimeNs) {
        if !self.stall_detect {
            return;
        }
        for i in 0..self.received.len() {
            if self.fault[i].is_none()
                && self.healthy_count() > 1
                && self.space(i) > (self.capacity[i] as u64 + self.stall_slack) as i64
            {
                self.fault[i] = Some(ArbFault {
                    at: now,
                    cause: ArbFaultCause::Stall,
                    group: None,
                });
            }
        }
    }

    fn pop(&mut self, now: TimeNs) -> ReadOutcome {
        match self.queue.pop_front() {
            Some(t) => {
                self.reads += 1;
                self.check_stall(now);
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }
}

/// A pluggable group-arbitration rule over the [`ArbiterLedger`].
///
/// [`PolicySelector::try_write`] handles the policy-independent preamble
/// (latched-interface writes, flow control) and postlude (the divergence
/// check); the policy decides everything value- and group-related in
/// between.
pub trait ComparePolicy: std::fmt::Debug + Send + 'static {
    /// Arbitrates one healthy, in-window write: count it via
    /// [`ArbiterLedger::note_received`], then deliver / discard / latch.
    /// Returns `Accepted` iff the write caused at least one delivery.
    fn arbitrate(
        &mut self,
        ledger: &mut ArbiterLedger,
        iface: usize,
        token: Token,
        now: TimeNs,
    ) -> WriteOutcome;

    /// A write on an already-latched interface. The default swallows it so
    /// a limping replica can never block the network.
    fn latched_write(
        &mut self,
        ledger: &mut ArbiterLedger,
        _iface: usize,
        _token: Token,
        _now: TimeNs,
    ) -> WriteOutcome {
        ledger.discard();
        WriteOutcome::AcceptedDropped
    }

    /// The post-write divergence check. Policies whose interfaces legally
    /// run at different rates (sampled checking) override this with a
    /// rate-normalised rule.
    fn check_divergence(&mut self, ledger: &mut ArbiterLedger, now: TimeNs) {
        ledger.check_divergence(now);
    }

    /// Whether interface `iface` is subject to the ledger's space-based
    /// flow control (`capacity − received + reads`). The rule presumes the
    /// interface's tokens reach the consumer queue; policies with a
    /// never-delivered interface (sampled-checker votes are discarded on
    /// arrival) exempt it, or a faulty peer that stops the delivered
    /// stream would block the healthy side.
    fn flow_controlled(&self, _iface: usize) -> bool {
        true
    }
}

/// The paper's timing arbitration: the first token of each duplicate group
/// is delivered, late group members are discarded. Pure counter logic —
/// token values are never inspected.
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstOfGroup;

impl ComparePolicy for FirstOfGroup {
    fn arbitrate(
        &mut self,
        ledger: &mut ArbiterLedger,
        iface: usize,
        token: Token,
        _now: TimeNs,
    ) -> WriteOutcome {
        // First of its duplicate group iff no healthy peer has delivered
        // this group index yet.
        let first = ledger.received(iface) >= ledger.healthy_max_received();
        ledger.note_received(iface);
        if first {
            ledger.deliver(token);
            WriteOutcome::Accepted
        } else {
            ledger.discard();
            WriteOutcome::AcceptedDropped
        }
    }
}

/// The one selector channel: an [`ArbiterLedger`] arbitrated by a
/// [`ComparePolicy`]. `NSelector`, `VotingSelector`, and `HeteroSelector`
/// are instantiation aliases.
#[derive(Debug)]
pub struct PolicySelector<P: ComparePolicy> {
    ledger: ArbiterLedger,
    policy: P,
}

impl<P: ComparePolicy> PolicySelector<P> {
    /// Assembles a selector from its ledger and policy.
    pub fn from_parts(ledger: ArbiterLedger, policy: P) -> Self {
        PolicySelector { ledger, policy }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        self.ledger.name()
    }

    /// The shared counter ledger (read-only).
    pub fn ledger(&self) -> &ArbiterLedger {
        &self.ledger
    }

    /// The arbitration policy (read-only).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Number of replicas still healthy.
    pub fn healthy_count(&self) -> usize {
        self.ledger.healthy_count()
    }

    /// Indices of the replicas currently latched faulty, ascending.
    pub fn faulty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.ledger.faulty_indices()
    }

    /// Tokens delivered to the consumer so far.
    pub fn enqueued(&self) -> u64 {
        self.ledger.enqueued()
    }

    /// Tokens consumed without delivery so far.
    pub fn discarded(&self) -> u64 {
        self.ledger.discarded()
    }

    /// Unified fault record of replica `i`, if latched (the aliases also
    /// expose their historical record types).
    pub fn arb_fault(&self, i: usize) -> Option<ArbFault> {
        self.ledger.fault(i)
    }
}

impl<P: ComparePolicy> ChannelBehavior for PolicySelector<P> {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        if self.ledger.fault(iface).is_some() {
            return self
                .policy
                .latched_write(&mut self.ledger, iface, token, now);
        }
        if self.policy.flow_controlled(iface) && self.ledger.space(iface) <= 0 {
            return WriteOutcome::Blocked(token);
        }
        let outcome = self.policy.arbitrate(&mut self.ledger, iface, token, now);
        self.policy.check_divergence(&mut self.ledger, now);
        outcome
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        assert_eq!(iface, 0, "selector has a single read interface");
        self.ledger.pop(now)
    }

    fn write_ifaces(&self) -> usize {
        self.ledger.replica_count()
    }

    fn read_ifaces(&self) -> usize {
        1
    }

    fn fill(&self, _iface: usize) -> usize {
        self.ledger.queue.len()
    }

    fn capacity(&self, iface: usize) -> usize {
        self.ledger.capacity[iface.min(self.ledger.capacity.len() - 1)]
    }

    fn max_fill(&self, _iface: usize) -> usize {
        self.ledger.max_fill
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Uniform read-side introspection over every arbitration channel —
/// replicators and selectors of any structure. The fleet's metric fold and
/// the chaos latch sweep use this instead of per-type downcasts.
pub trait Arbiter {
    /// Diagnostic name of the channel.
    fn arbiter_name(&self) -> &str;

    /// Number of replica-facing interfaces.
    fn replica_ifaces(&self) -> usize;

    /// Unified latch record for replica `i`.
    fn latched(&self, i: usize) -> Option<ArbFault>;

    /// Replicas not latched.
    fn healthy_replicas(&self) -> usize {
        (0..self.replica_ifaces())
            .filter(|&i| self.latched(i).is_none())
            .count()
    }

    /// Earliest latch instant over all replicas, if any latched.
    fn first_latch(&self) -> Option<TimeNs> {
        (0..self.replica_ifaces())
            .filter_map(|i| self.latched(i).map(|f| f.at))
            .min()
    }
}

impl<P: ComparePolicy> Arbiter for PolicySelector<P> {
    fn arbiter_name(&self) -> &str {
        self.ledger.name()
    }

    fn replica_ifaces(&self) -> usize {
        self.ledger.replica_count()
    }

    fn latched(&self, i: usize) -> Option<ArbFault> {
        self.ledger.fault(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::Payload;

    fn tok(seq: u64) -> Token {
        Token::new(seq, TimeNs::ZERO, Payload::U64(seq))
    }

    #[test]
    fn ledger_counts_and_spaces() {
        let mut l = ArbiterLedger::new("l", vec![4, 6], 3);
        assert_eq!(l.replica_count(), 2);
        assert_eq!(l.space(0), 4);
        assert_eq!(l.space(1), 6);
        assert_eq!(l.note_received(0), 0);
        assert_eq!(l.note_received(0), 1);
        assert_eq!(l.space(0), 2);
        l.deliver(tok(0));
        assert_eq!(l.enqueued(), 1);
        assert!(matches!(l.pop(TimeNs::ZERO), ReadOutcome::Token(_)));
        assert_eq!(l.space(0), 3, "reads open space back up");
    }

    #[test]
    fn first_of_group_delivers_once_per_group() {
        let ledger = ArbiterLedger::new("s", vec![4, 4], 2);
        let mut s = PolicySelector::from_parts(ledger, FirstOfGroup);
        assert_eq!(s.try_write(1, tok(0), TimeNs::ZERO), WriteOutcome::Accepted);
        assert_eq!(
            s.try_write(0, tok(0), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
        assert_eq!(s.enqueued(), 1);
        assert_eq!(s.discarded(), 1);
    }

    #[test]
    fn divergence_latches_behind_replica_only() {
        let ledger = ArbiterLedger::new("s", vec![16, 16], 3);
        let mut s = PolicySelector::from_parts(ledger, FirstOfGroup);
        for g in 0..3 {
            s.try_write(0, tok(g), TimeNs::from_ms(g));
        }
        let f = s.arb_fault(1).expect("stalled replica latched");
        assert_eq!(f.cause, ArbFaultCause::Divergence);
        assert!(s.arb_fault(0).is_none(), "front-runner never latched");
        assert_eq!(s.healthy_count(), 1);
        // Arbiter-trait view agrees.
        assert_eq!(s.healthy_replicas(), 1);
        assert_eq!(s.first_latch(), Some(TimeNs::from_ms(2)));
    }

    #[test]
    fn latched_writes_are_swallowed_by_default() {
        let ledger = ArbiterLedger::new("s", vec![16, 16], 2);
        let mut s = PolicySelector::from_parts(ledger, FirstOfGroup);
        for g in 0..2 {
            s.try_write(0, tok(g), TimeNs::ZERO);
        }
        assert!(s.arb_fault(1).is_some());
        assert_eq!(
            s.try_write(1, tok(0), TimeNs::ZERO),
            WriteOutcome::AcceptedDropped
        );
    }
}
