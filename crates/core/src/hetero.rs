//! Heterogeneous sampled-checker redundancy: full-rate main, `1/k`-rate
//! checker.
//!
//! Duplication and n-modular voting buy their guarantees with `n×` compute.
//! This module implements the third point of the cost/latency trade-off: a
//! single **full-rate main replica** carries the stream, and a lightweight
//! **checker** re-verifies a *sampled projection* — every `k`-th token — of
//! it. Compute cost drops from `2×` to `1 + 1/k` at the price of detection
//! latency growing linearly in `k` (the closed form lives in
//! [`rtft_rtc::detection::HeteroBounds`]).
//!
//! Structure:
//!
//! * [`SampledReplicator`] — one write interface; read interface `0` feeds
//!   the main replica the full stream, read interface `1` feeds the checker
//!   every `k`-th token. The §3.3 overflow latch guards the main queue at
//!   full rate, so the permanent-timing guarantee of the duplicated
//!   structure survives sampling unchanged.
//! * [`SampledCheck`] — the [`ComparePolicy`]: main tokens pass straight
//!   through to the consumer at full rate; every `k`-th main digest is
//!   held as a *sample*, and the checker's `j`-th write is its independent
//!   digest for sample `j`. A mismatch latches the **main** replica
//!   value-faulty (the checker is the trusted, verified side, as in
//!   checker-core architectures). Timing divergence is detected on the
//!   *sample counters* — main samples seen vs. checker votes — with the
//!   sampled threshold `D_s`; the classic stall rule is disabled because
//!   the checker legally runs `k×` slower.
//! * [`HeteroSelector`] — the [`PolicySelector`] instantiation. After a
//!   main latch the stream **keeps flowing** (fail-operational): with no
//!   full-rate standby there is nothing to switch to, so the structure is
//!   detection-only and recovery happens one level up (the fleet heals a
//!   latched job by re-spawning it).
//!
//! All detection remains counter-based — neither channel ever reads a
//! clock.

use crate::arbitration::{
    ArbFault, ArbFaultCause, Arbiter, ArbiterLedger, ComparePolicy, PolicySelector,
};
use crate::fault::FaultPlan;
use crate::replicator::{FaultRecord, ReplicatorFaultCause};
use rtft_kpn::{
    ChannelBehavior, ChannelId, Network, NodeId, PjdSink, PjdSource, PortId, ReadOutcome, Token,
    WriteOutcome,
};
use rtft_rtc::detection::{sampled_stream_model, HeteroBounds};
use rtft_rtc::{sizing, CurveAnalysisError, PjdModel, TimeNs};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Interface timing models of a sampled-checker stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeteroModel {
    /// Producer output model (`α_P`).
    pub producer: PjdModel,
    /// Consumer input model (`α_C`).
    pub consumer: PjdModel,
    /// Full-rate main replica interface model.
    pub main: PjdModel,
    /// Checker vote interface model, already at the sampled rate
    /// (period `≈ k · P`).
    pub checker: PjdModel,
    /// Sampling stride: every `k`-th main token is re-verified.
    pub k: u64,
}

impl HeteroModel {
    /// Builds a model where the checker runs at exactly the sampled rate
    /// (`k ×` the producer period) with its own jitter.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_checker_jitter(
        producer: PjdModel,
        consumer: PjdModel,
        main: PjdModel,
        checker_jitter: TimeNs,
        k: u64,
    ) -> Self {
        assert!(k > 0, "sampling stride must be positive");
        let checker = PjdModel::new(producer.period * k, checker_jitter, main.delay);
        HeteroModel {
            producer,
            consumer,
            main,
            checker,
            k,
        }
    }
}

/// The offline analysis of a sampled-checker stage: queue capacities, the
/// sampled divergence threshold `D_s`, and the closed-form bound table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeteroSizingReport {
    /// Main replicator FIFO capacity (eq. (3), full rate).
    pub main_queue: u64,
    /// Checker replicator FIFO capacity (eq. (3) on the sampled pair).
    pub checker_queue: u64,
    /// Main selector virtual-queue capacity.
    pub selector_capacity_main: u64,
    /// Checker selector virtual-queue capacity (votes are never delivered;
    /// this only bounds in-flight votes).
    pub selector_capacity_checker: u64,
    /// Sampled divergence threshold `D_s` (eq. (5) over the two *sample*
    /// streams — main's `k`-decimated output vs. the checker votes).
    pub sampled_threshold: u64,
}

impl HeteroSizingReport {
    /// Runs the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CurveAnalysisError`] if any rate pairing diverges (the
    /// checker model's long-run rate must equal the sampled main rate).
    pub fn analyze(model: &HeteroModel) -> Result<Self, CurveAnalysisError> {
        let sampled_producer = sampled_stream_model(&model.producer, model.k);
        let sampled_main = sampled_stream_model(&model.main, model.k);
        let main_queue = sizing::fifo_capacity(&model.producer, &model.main)?;
        let checker_queue = sizing::fifo_capacity(&sampled_producer, &model.checker)?;
        let selector_capacity_main = sizing::selector_capacity(&model.consumer, &model.main)?;
        let sampled_threshold = sizing::divergence_threshold(&sampled_main, &model.checker)?;
        Ok(HeteroSizingReport {
            main_queue,
            checker_queue,
            selector_capacity_main,
            // Space only has to admit the votes the checker may be ahead
            // by; D_s bounds that fault-free, plus slack for the initial
            // read-free window.
            selector_capacity_checker: sampled_threshold + 2,
            sampled_threshold,
        })
    }

    /// The closed-form detection bound table for this sizing.
    pub fn bounds(&self, model: &HeteroModel) -> HeteroBounds {
        HeteroBounds::new(
            model.producer,
            model.main,
            model.checker,
            model.k,
            self.sampled_threshold,
            self.main_queue,
        )
    }

    /// Compute cost of the structure relative to the unreplicated
    /// application: `1 + 1/k` (the duplicated structure costs `2`).
    pub fn compute_factor(model: &HeteroModel) -> f64 {
        1.0 + 1.0 / model.k as f64
    }
}

/// Replicator channel of the sampled-checker structure: one write
/// interface; read interface `0` = main (full stream), read interface `1`
/// = checker (every `k`-th token). The §3.3 overflow latch applies per
/// queue; consumption divergence is checked on *sample-normalised* counts.
#[derive(Debug)]
pub struct SampledReplicator {
    name: String,
    queues: [VecDeque<Token>; 2],
    capacity: [usize; 2],
    max_fill: [usize; 2],
    consumed: [u64; 2],
    writes: u64,
    dropped: u64,
    fault: [Option<FaultRecord>; 2],
    k: u64,
    divergence_threshold: Option<u64>,
}

impl SampledReplicator {
    /// Creates a sampled replicator: main queue capacity, checker queue
    /// capacity, sampling stride `k`, and optional consumption-divergence
    /// threshold `D_s`.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity or `k == 0`.
    pub fn new(
        name: impl Into<String>,
        capacity: [usize; 2],
        k: u64,
        divergence_threshold: Option<u64>,
    ) -> Self {
        assert!(
            capacity.iter().all(|c| *c > 0),
            "capacities must be positive"
        );
        assert!(k > 0, "sampling stride must be positive");
        SampledReplicator {
            name: name.into(),
            queues: [VecDeque::new(), VecDeque::new()],
            capacity,
            max_fill: [0; 2],
            consumed: [0; 2],
            writes: 0,
            dropped: 0,
            fault: [None, None],
            k,
            divergence_threshold,
        }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sampling stride `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Fault record of side `i` (`0` = main, `1` = checker), if latched.
    pub fn fault(&self, i: usize) -> Option<FaultRecord> {
        self.fault[i]
    }

    /// Number of sides still healthy.
    pub fn healthy_count(&self) -> usize {
        self.fault.iter().filter(|f| f.is_none()).count()
    }

    /// Indices of the sides currently latched faulty, ascending.
    pub fn faulty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.fault
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|_| i))
    }

    /// Tokens consumed from side `i` so far — the structure's compute-cost
    /// meter: `consumed(0) + consumed(1)` is the total stage work, versus
    /// `2 × tokens` for the duplicated structure.
    pub fn consumed(&self, i: usize) -> u64 {
        self.consumed[i]
    }

    /// Producer writes swallowed because the main side was already latched.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn check_divergence(&mut self, now: TimeNs) {
        let Some(d) = self.divergence_threshold else {
            return;
        };
        if self.healthy_count() < 2 {
            return;
        }
        // Sample-normalised consumption: the main has worked through
        // `ceil(c₀ / k)` samples, the checker through `c₁`.
        let s = [self.consumed[0].div_ceil(self.k), self.consumed[1]];
        for i in 0..2 {
            if self.fault[i].is_none() && s[1 - i].saturating_sub(s[i]) >= d {
                self.fault[i] = Some(FaultRecord {
                    at: now,
                    cause: ReplicatorFaultCause::Divergence,
                });
            }
        }
    }
}

impl ChannelBehavior for SampledReplicator {
    fn try_write(&mut self, iface: usize, token: Token, now: TimeNs) -> WriteOutcome {
        assert_eq!(iface, 0, "sampled replicator has a single write interface");
        let targets = [true, self.writes.is_multiple_of(self.k)];
        // §3.3 overflow latch per full, healthy, targeted queue — never the
        // last healthy side.
        for (i, &targeted) in targets.iter().enumerate() {
            if targeted
                && self.fault[i].is_none()
                && self.queues[i].len() >= self.capacity[i]
                && self.healthy_count() > 1
            {
                self.fault[i] = Some(FaultRecord {
                    at: now,
                    cause: ReplicatorFaultCause::Overflow,
                });
            }
        }
        let mut delivered = false;
        let mut healthy_full = false;
        for (i, &targeted) in targets.iter().enumerate() {
            if targeted && self.fault[i].is_none() {
                if self.queues[i].len() < self.capacity[i] {
                    self.queues[i].push_back(token.clone());
                    self.max_fill[i] = self.max_fill[i].max(self.queues[i].len());
                    delivered = true;
                } else {
                    healthy_full = true;
                }
            }
        }
        if delivered {
            self.writes += 1;
            WriteOutcome::Accepted
        } else if healthy_full {
            // The last healthy side is full and cannot be latched: real
            // back-pressure.
            WriteOutcome::Blocked(token)
        } else {
            // Every targeted side is latched (detection-only mode): swallow
            // so the producer — and the checker feed on sample ticks — can
            // keep running.
            self.writes += 1;
            self.dropped += 1;
            WriteOutcome::AcceptedDropped
        }
    }

    fn try_read(&mut self, iface: usize, now: TimeNs) -> ReadOutcome {
        assert!(iface < 2, "sampled replicator has two read interfaces");
        match self.queues[iface].pop_front() {
            Some(t) => {
                self.consumed[iface] += 1;
                self.check_divergence(now);
                ReadOutcome::Token(t)
            }
            None => ReadOutcome::Blocked,
        }
    }

    fn write_ifaces(&self) -> usize {
        1
    }

    fn read_ifaces(&self) -> usize {
        2
    }

    fn fill(&self, iface: usize) -> usize {
        self.queues[iface].len()
    }

    fn capacity(&self, iface: usize) -> usize {
        self.capacity[iface]
    }

    fn max_fill(&self, iface: usize) -> usize {
        self.max_fill[iface]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Arbiter for SampledReplicator {
    fn arbiter_name(&self) -> &str {
        self.name()
    }

    fn replica_ifaces(&self) -> usize {
        2
    }

    fn latched(&self, i: usize) -> Option<ArbFault> {
        self.fault[i].map(|f| ArbFault {
            at: f.at,
            cause: match f.cause {
                ReplicatorFaultCause::Overflow => ArbFaultCause::Stall,
                ReplicatorFaultCause::Divergence => ArbFaultCause::Divergence,
            },
            group: None,
        })
    }
}

/// The sampled-checker [`ComparePolicy`]: interface `0` is the full-rate
/// main stream (delivered straight through), interface `1` the checker's
/// digest votes for every `k`-th main token.
#[derive(Debug)]
pub struct SampledCheck {
    k: u64,
    main_digest: BTreeMap<u64, u64>,
    checker_digest: BTreeMap<u64, u64>,
    samples: u64,
    votes: u64,
    verified: u64,
    mismatches: u64,
}

impl SampledCheck {
    /// A sampled-check policy with stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k > 0, "sampling stride must be positive");
        SampledCheck {
            k,
            main_digest: BTreeMap::new(),
            checker_digest: BTreeMap::new(),
            samples: 0,
            votes: 0,
            verified: 0,
            mismatches: 0,
        }
    }

    /// The sampling stride `k`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Sampled main tokens observed so far (one per `k` delivered).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Checker votes received so far.
    pub fn checker_votes(&self) -> u64 {
        self.votes
    }

    /// Samples whose main and checker digests have both arrived and been
    /// compared.
    pub fn verified(&self) -> u64 {
        self.verified
    }

    /// Digest mismatches caught (each also latches the main replica).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// How many samples the checker currently trails the main stream by —
    /// the per-structure staleness gauge the fleet exports.
    pub fn checker_lag(&self) -> u64 {
        self.samples.saturating_sub(self.votes)
    }

    fn resolve(&mut self, sample: u64, ledger: &mut ArbiterLedger, now: TimeNs) {
        let (Some(m), Some(c)) = (
            self.main_digest.get(&sample).copied(),
            self.checker_digest.get(&sample).copied(),
        ) else {
            return;
        };
        self.main_digest.remove(&sample);
        self.checker_digest.remove(&sample);
        self.verified += 1;
        if m != c {
            self.mismatches += 1;
            // The checker is the trusted side: a disagreement convicts the
            // full-rate main replica.
            ledger.latch(0, ArbFaultCause::ValueMismatch, Some(sample * self.k), now);
        }
    }
}

impl ComparePolicy for SampledCheck {
    fn arbitrate(
        &mut self,
        ledger: &mut ArbiterLedger,
        iface: usize,
        token: Token,
        now: TimeNs,
    ) -> WriteOutcome {
        let group = ledger.note_received(iface);
        if iface == 0 {
            // Full-rate pass-through; every k-th digest becomes a sample.
            if group.is_multiple_of(self.k) {
                let sample = group / self.k;
                self.samples += 1;
                self.main_digest.insert(sample, token.payload.digest());
                ledger.deliver(token);
                self.resolve(sample, ledger, now);
            } else {
                ledger.deliver(token);
            }
            WriteOutcome::Accepted
        } else {
            // Checker vote for sample `group`; never delivered downstream.
            // Once the main is latched no further samples will arrive, so
            // the digest is not worth holding.
            self.votes += 1;
            if ledger.fault(0).is_none() {
                self.checker_digest.insert(group, token.payload.digest());
            }
            ledger.discard();
            self.resolve(group, ledger, now);
            WriteOutcome::AcceptedDropped
        }
    }

    fn latched_write(
        &mut self,
        ledger: &mut ArbiterLedger,
        iface: usize,
        token: Token,
        _now: TimeNs,
    ) -> WriteOutcome {
        if iface == 0 {
            // Fail-operational: there is no full-rate standby, so a latched
            // main keeps feeding the consumer; the latch is the detection
            // signal the supervisor heals on.
            ledger.note_received(0);
            ledger.deliver(token);
            WriteOutcome::Accepted
        } else {
            ledger.discard();
            WriteOutcome::AcceptedDropped
        }
    }

    fn check_divergence(&mut self, ledger: &mut ArbiterLedger, now: TimeNs) {
        // Rate-normalised divergence on *sample* counters: main has passed
        // ceil(r₀ / k) samples, the checker has voted r₁ times. The raw
        // ledger rule would insta-latch the k×-slower checker.
        if ledger.healthy_count() < 2 {
            return;
        }
        let d = ledger.threshold();
        let s = [ledger.received(0).div_ceil(self.k), ledger.received(1)];
        for i in 0..2 {
            if ledger.fault(i).is_none() && s[1 - i].saturating_sub(s[i]) >= d {
                ledger.latch(i, ArbFaultCause::Divergence, None, now);
            }
        }
    }

    fn flow_controlled(&self, iface: usize) -> bool {
        // Checker votes are discarded on arrival — they never occupy the
        // consumer queue, so the space rule (which compares votes against
        // consumer reads of the *main* stream) must not block them. A
        // main replica that under-delivers would otherwise backpressure
        // the healthy checker into a false replicator-overflow latch.
        iface == 0
    }
}

/// Selector of the sampled-checker structure: the [`SampledCheck`] policy
/// over the shared [`ArbiterLedger`], with stall detection disabled (the
/// checker legally runs `k×` slower, so space counters carry no signal).
pub type HeteroSelector = PolicySelector<SampledCheck>;

impl HeteroSelector {
    /// Creates a hetero selector: main and checker virtual capacities,
    /// sampled divergence threshold `d_s`, and sampling stride `k`.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity, `d_s == 0`, or `k == 0`.
    pub fn new(
        name: impl Into<String>,
        main_capacity: usize,
        checker_capacity: usize,
        d_s: u64,
        k: u64,
    ) -> Self {
        PolicySelector::from_parts(
            ArbiterLedger::new(name, vec![main_capacity, checker_capacity], d_s)
                .without_stall_detection(),
            SampledCheck::new(k),
        )
    }

    /// Fault record of side `i` (`0` = main, `1` = checker), if latched.
    pub fn fault(&self, i: usize) -> Option<ArbFault> {
        self.arb_fault(i)
    }
}

/// A replica factory for the hetero structure: replica `0` is the
/// full-rate main stage, replica `1` the sampled-rate checker stage. Each
/// is a fixed-service transform followed by a
/// [`PjdShaper`](rtft_kpn::PjdShaper) imposing that side's interface
/// model.
#[derive(Debug, Clone)]
pub struct HeteroStageReplica {
    /// Fixed per-token service time of both compute stages.
    pub service: TimeNs,
    /// Output models: `[main (full rate), checker (sampled rate)]`.
    pub out_models: [PjdModel; 2],
    /// Shaper schedule offset; must cover `service` plus producer jitter.
    pub offset: TimeNs,
    /// Base RNG seed; side `i` uses `seed_base + i`.
    pub seed_base: u64,
}

impl HeteroStageReplica {
    /// Builds the factory from a hetero model: service one tenth of the
    /// producer period, offset `service + producer jitter + 1 ms`.
    pub fn from_model(model: &HeteroModel) -> Self {
        let service = model.producer.period / 10;
        let offset = service + model.producer.jitter + TimeNs::from_ms(1);
        HeteroStageReplica {
            service,
            out_models: [model.main, model.checker],
            offset,
            seed_base: 0xc0de,
        }
    }

    /// Overrides the RNG seed base.
    pub fn with_seed_base(mut self, seed_base: u64) -> Self {
        self.seed_base = seed_base;
        self
    }
}

impl crate::ReplicaFactory for HeteroStageReplica {
    fn build(
        &self,
        net: &mut Network,
        input: PortId,
        output: PortId,
        replica: usize,
        fault: FaultPlan,
    ) -> Vec<NodeId> {
        let side = if replica == 0 { "main" } else { "checker" };
        let internal = net.add_channel(rtft_kpn::Fifo::new(format!("{side}.shape"), 4));
        let seed = self.seed_base.wrapping_add(replica as u64);
        let stage = rtft_kpn::Transform::new(
            format!("{side}.stage"),
            input,
            PortId::of(internal),
            self.service,
            TimeNs::ZERO,
            seed,
            |p| p,
        );
        let stage_id = net.add_process(crate::FaultyProcess::new(stage, fault));
        let shaper = rtft_kpn::PjdShaper::new(
            format!("{side}.shaper"),
            PortId::of(internal),
            output,
            self.out_models[replica].with_delay(self.offset),
            seed.wrapping_add(0x5eed),
        );
        let shaper_id = net.add_process(shaper);
        vec![stage_id, shaper_id]
    }
}

/// Ids of a built hetero network.
#[derive(Debug, Clone)]
pub struct HeteroIds {
    /// The sampled replicator.
    pub replicator: ChannelId,
    /// The hetero selector.
    pub selector: ChannelId,
    /// The producer process.
    pub producer: NodeId,
    /// The consumer process.
    pub consumer: NodeId,
    /// Main-stage process ids.
    pub main: Vec<NodeId>,
    /// Checker-stage process ids.
    pub checker: Vec<NodeId>,
}

impl HeteroIds {
    /// Consumer arrivals after a run.
    ///
    /// # Panics
    ///
    /// Panics if the network does not contain the expected sink.
    pub fn consumer_arrivals<'a>(&self, net: &'a Network) -> &'a [(TimeNs, u64)] {
        net.process_as::<PjdSink>(self.consumer)
            .expect("consumer sink")
            .arrivals()
    }

    /// Earliest latch instant across both channels, if any side latched.
    pub fn first_latch(&self, net: &Network) -> Option<TimeNs> {
        let rep = net
            .channel_as::<SampledReplicator>(self.replicator)
            .expect("sampled replicator");
        let sel = net
            .channel_as::<HeteroSelector>(self.selector)
            .expect("hetero selector");
        match (Arbiter::first_latch(rep), Arbiter::first_latch(sel)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Builds a hetero network: producer → sampled replicator → {main,
/// checker} → hetero selector → consumer, with a fault plan per side
/// (`faults[0]` = main, `faults[1]` = checker).
///
/// # Panics
///
/// Panics if `model.k == 0`.
pub fn build_hetero(
    model: &HeteroModel,
    sizing: &HeteroSizingReport,
    token_count: u64,
    seeds: (u64, u64),
    payload: crate::PayloadGenerator,
    factory: &dyn crate::ReplicaFactory,
    faults: &[FaultPlan; 2],
) -> (Network, HeteroIds) {
    assert!(model.k > 0, "sampling stride must be positive");
    let mut net = Network::new();
    let replicator = net.add_channel(SampledReplicator::new(
        "sampled-replicator",
        [sizing.main_queue as usize, sizing.checker_queue as usize],
        model.k,
        Some(sizing.sampled_threshold),
    ));
    let selector = net.add_channel(HeteroSelector::new(
        "hetero-selector",
        sizing.selector_capacity_main as usize,
        sizing.selector_capacity_checker as usize,
        sizing.sampled_threshold,
        model.k,
    ));

    let gen = payload;
    let producer = net.add_process(PjdSource::new(
        "producer",
        PortId::of(replicator),
        model.producer,
        seeds.0,
        Some(token_count),
        move |seq| gen(seq),
    ));

    let main = factory.build(
        &mut net,
        PortId::iface(replicator, 0),
        PortId::iface(selector, 0),
        0,
        faults[0],
    );
    let checker = factory.build(
        &mut net,
        PortId::iface(replicator, 1),
        PortId::iface(selector, 1),
        1,
        faults[1],
    );

    let consumer = net.add_process(PjdSink::new(
        "consumer",
        PortId::of(selector),
        model.consumer,
        seeds.1,
        Some(token_count),
    ));

    (
        net,
        HeteroIds {
            replicator,
            selector,
            producer,
            consumer,
            main,
            checker,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CorruptionMode;
    use rtft_kpn::{Engine, Payload};
    use std::sync::Arc;

    fn model(k: u64) -> HeteroModel {
        HeteroModel::with_checker_jitter(
            PjdModel::from_ms(30.0, 2.0, 0.0),
            PjdModel::from_ms(30.0, 2.0, 150.0),
            PjdModel::from_ms(30.0, 5.0, 0.0),
            TimeNs::from_ms(10),
            k,
        )
    }

    fn run(
        k: u64,
        tokens: u64,
        faults: [FaultPlan; 2],
    ) -> (Network, HeteroIds, HeteroSizingReport) {
        let m = model(k);
        let sizing = HeteroSizingReport::analyze(&m).expect("bounded");
        let factory = HeteroStageReplica::from_model(&m).with_seed_base(7);
        let payload: crate::PayloadGenerator =
            Arc::new(|seq| Payload::U64(seq.wrapping_mul(0x9e37_79b9)));
        let (net, ids) = build_hetero(&m, &sizing, tokens, (1, 2), payload, &factory, &faults);
        let mut engine = Engine::new(net);
        engine.run_until(TimeNs::from_secs(120));
        (engine.into_network(), ids, sizing)
    }

    #[test]
    fn healthy_run_delivers_all_and_verifies_every_kth() {
        for k in [1, 4, 16] {
            let (net, ids, _) = run(k, 96, [FaultPlan::healthy(), FaultPlan::healthy()]);
            assert_eq!(ids.consumer_arrivals(&net).len(), 96, "k={k}");
            let sel = net
                .channel_as::<HeteroSelector>(ids.selector)
                .expect("selector");
            assert!(ids.first_latch(&net).is_none(), "k={k}: no false positive");
            let p = sel.policy();
            assert_eq!(p.samples(), 96u64.div_ceil(k), "k={k}");
            assert_eq!(p.verified(), p.samples(), "k={k}: every sample checked");
            assert_eq!(p.mismatches(), 0);
            // Compute meter: main does all tokens, checker 1/k of them.
            let rep = net
                .channel_as::<SampledReplicator>(ids.replicator)
                .expect("replicator");
            assert_eq!(rep.consumed(0), 96);
            assert_eq!(rep.consumed(1), 96u64.div_ceil(k));
        }
    }

    #[test]
    fn checker_fail_stop_latches_checker_stream_uninterrupted() {
        let (net, ids, _) = run(
            4,
            96,
            [
                FaultPlan::healthy(),
                FaultPlan::fail_stop_at(TimeNs::from_ms(400)),
            ],
        );
        assert_eq!(ids.consumer_arrivals(&net).len(), 96);
        let sel = net
            .channel_as::<HeteroSelector>(ids.selector)
            .expect("selector");
        let rep = net
            .channel_as::<SampledReplicator>(ids.replicator)
            .expect("replicator");
        assert!(sel.fault(0).is_none(), "main never latched");
        let latched = sel.fault(1).or(rep.latched(1));
        assert!(latched.is_some(), "checker latched somewhere");
    }

    #[test]
    fn main_fail_stop_detected_within_sampled_bound() {
        let k = 4;
        let injected = TimeNs::from_ms(400);
        let (net, ids, sizing) = run(
            k,
            200,
            [FaultPlan::fail_stop_at(injected), FaultPlan::healthy()],
        );
        let at = ids.first_latch(&net).expect("main fault detected");
        let bounds = sizing.bounds(&model(k));
        let grace = TimeNs::from_ms(32); // producer period + jitter
        assert!(
            at >= injected && at <= injected + bounds.permanent_timing() + grace,
            "latched at {at:?}, injected {injected:?}, bound {:?}",
            bounds.permanent_timing()
        );
    }

    #[test]
    fn corrupt_main_caught_by_digest_mismatch_fail_operational() {
        let injected = TimeNs::from_ms(500);
        let (net, ids, _) = run(
            4,
            96,
            [
                FaultPlan::corrupt_at(CorruptionMode::BitFlip(3), injected),
                FaultPlan::healthy(),
            ],
        );
        let sel = net
            .channel_as::<HeteroSelector>(ids.selector)
            .expect("selector");
        let f = sel.fault(0).expect("main latched");
        assert_eq!(f.cause, ArbFaultCause::ValueMismatch);
        assert!(sel.policy().mismatches() >= 1);
        // Fail-operational: the stream keeps flowing after the latch.
        assert_eq!(ids.consumer_arrivals(&net).len(), 96);
    }

    #[test]
    fn sizing_scales_with_k() {
        let s1 = HeteroSizingReport::analyze(&model(1)).expect("bounded");
        let s16 = HeteroSizingReport::analyze(&model(16)).expect("bounded");
        assert!(s1.main_queue >= 1 && s16.main_queue >= 1);
        let b1 = s1.bounds(&model(1));
        let b16 = s16.bounds(&model(16));
        assert!(b16.sampled_divergence > b1.sampled_divergence);
        assert!(
            HeteroSizingReport::compute_factor(&model(16))
                < HeteroSizingReport::compute_factor(&model(1))
        );
    }
}
