//! Stream-equivalence checking (paper Theorem 2).
//!
//! Theorem 2 states that the duplicated network produces the *same value
//! sequence* as the reference network, and timestamps no worse than a
//! stream that satisfies the consumer's requirements, even under a single
//! timing fault. The harness verifies this empirically by comparing the
//! consumer-side arrival logs of paired runs.

use rtft_rtc::{PjdModel, TimeNs};

/// Result of comparing two consumer arrival logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamComparison {
    /// Number of tokens compared (min of the two lengths).
    pub compared: usize,
    /// Lengths of the two logs.
    pub lengths: (usize, usize),
    /// Index of the first value (digest) mismatch, if any.
    pub first_value_mismatch: Option<usize>,
    /// Largest amount by which a duplicated-network arrival *lags* the
    /// reference arrival of the same index (zero if never later).
    pub max_lag: TimeNs,
    /// Largest amount by which a duplicated-network arrival *leads* the
    /// reference arrival of the same index.
    pub max_lead: TimeNs,
}

impl StreamComparison {
    /// `true` when both logs have equal length and identical value
    /// sequences (the functional half of Theorem 2).
    pub fn values_equal(&self) -> bool {
        self.lengths.0 == self.lengths.1 && self.first_value_mismatch.is_none()
    }
}

/// Compares a reference arrival log against a duplicated-network arrival
/// log; entries are `(completion time, payload digest)` as recorded by
/// [`rtft_kpn::PjdSink`].
///
/// # Examples
///
/// ```
/// use rtft_core::equivalence::compare_streams;
/// use rtft_rtc::TimeNs;
///
/// let reference = vec![(TimeNs::from_ms(30), 0xaa), (TimeNs::from_ms(60), 0xbb)];
/// let duplicated = vec![(TimeNs::from_ms(30), 0xaa), (TimeNs::from_ms(61), 0xbb)];
/// let cmp = compare_streams(&reference, &duplicated);
/// assert!(cmp.values_equal());
/// assert_eq!(cmp.max_lag, TimeNs::from_ms(1));
/// ```
pub fn compare_streams(
    reference: &[(TimeNs, u64)],
    duplicated: &[(TimeNs, u64)],
) -> StreamComparison {
    let compared = reference.len().min(duplicated.len());
    let mut first_value_mismatch = None;
    let mut max_lag = TimeNs::ZERO;
    let mut max_lead = TimeNs::ZERO;
    for i in 0..compared {
        let (rt, rd) = reference[i];
        let (dt, dd) = duplicated[i];
        if rd != dd && first_value_mismatch.is_none() {
            first_value_mismatch = Some(i);
        }
        if dt > rt {
            max_lag = max_lag.max(dt - rt);
        } else {
            max_lead = max_lead.max(rt - dt);
        }
    }
    StreamComparison {
        compared,
        lengths: (reference.len(), duplicated.len()),
        first_value_mismatch,
        max_lag,
        max_lead,
    }
}

/// Summary statistics over inter-arrival times — the paper's "Decoded
/// Inter-Frame Timings" block of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStats {
    /// Smallest inter-arrival gap.
    pub min: TimeNs,
    /// Largest inter-arrival gap.
    pub max: TimeNs,
    /// Mean inter-arrival gap (integer nanoseconds).
    pub mean: TimeNs,
    /// Number of gaps summarised.
    pub samples: usize,
}

impl TimingStats {
    /// Computes stats over a set of durations. Returns `None` for an empty
    /// input.
    pub fn from_durations(durations: &[TimeNs]) -> Option<Self> {
        if durations.is_empty() {
            return None;
        }
        let mut min = TimeNs::MAX;
        let mut max = TimeNs::ZERO;
        let mut sum: u128 = 0;
        for d in durations {
            min = min.min(*d);
            max = max.max(*d);
            sum += d.as_ns() as u128;
        }
        Some(TimingStats {
            min,
            max,
            mean: TimeNs::from_ns((sum / durations.len() as u128) as u64),
            samples: durations.len(),
        })
    }

    /// Stats over the gaps of an arrival log.
    pub fn from_arrivals(arrivals: &[(TimeNs, u64)]) -> Option<Self> {
        let gaps: Vec<TimeNs> = arrivals.windows(2).map(|w| w[1].0 - w[0].0).collect();
        Self::from_durations(&gaps)
    }
}

impl std::fmt::Display for TimingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {} / max {} / mean {} (n={})",
            self.min, self.max, self.mean, self.samples
        )
    }
}

/// Checks an arrival log against a consumer's PJD requirement: every
/// token's completion must not precede its nominal schedule by more than
/// the model allows, and the log must keep pace (no token later than
/// `nominal + jitter + slack`).
///
/// Returns the index of the first violating arrival, or `None` if the log
/// satisfies the requirement.
pub fn first_timing_violation(
    arrivals: &[(TimeNs, u64)],
    consumer: &PjdModel,
    slack: TimeNs,
) -> Option<usize> {
    for (i, (t, _)) in arrivals.iter().enumerate() {
        let nominal = consumer.delay + consumer.period * (i as u64);
        let latest = nominal + consumer.jitter + slack;
        if *t > latest {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_ms(v)
    }

    #[test]
    fn identical_streams_compare_equal() {
        let log = vec![(ms(1), 1u64), (ms(2), 2), (ms(3), 3)];
        let cmp = compare_streams(&log, &log);
        assert!(cmp.values_equal());
        assert_eq!(cmp.max_lag, TimeNs::ZERO);
        assert_eq!(cmp.max_lead, TimeNs::ZERO);
        assert_eq!(cmp.compared, 3);
    }

    #[test]
    fn value_mismatch_is_located() {
        let a = vec![(ms(1), 1u64), (ms(2), 2), (ms(3), 3)];
        let b = vec![(ms(1), 1u64), (ms(2), 9), (ms(3), 3)];
        let cmp = compare_streams(&a, &b);
        assert_eq!(cmp.first_value_mismatch, Some(1));
        assert!(!cmp.values_equal());
    }

    #[test]
    fn length_mismatch_fails_equality() {
        let a = vec![(ms(1), 1u64), (ms(2), 2)];
        let b = vec![(ms(1), 1u64)];
        let cmp = compare_streams(&a, &b);
        assert!(!cmp.values_equal());
        assert_eq!(cmp.compared, 1);
        assert_eq!(cmp.lengths, (2, 1));
    }

    #[test]
    fn lag_and_lead_are_tracked_separately() {
        let a = vec![(ms(10), 1u64), (ms(20), 2)];
        let b = vec![(ms(7), 1u64), (ms(25), 2)];
        let cmp = compare_streams(&a, &b);
        assert_eq!(cmp.max_lead, ms(3));
        assert_eq!(cmp.max_lag, ms(5));
    }

    #[test]
    fn timing_stats_basics() {
        let stats = TimingStats::from_durations(&[ms(29), ms(30), ms(43)]).unwrap();
        assert_eq!(stats.min, ms(29));
        assert_eq!(stats.max, ms(43));
        assert_eq!(stats.mean, ms(34));
        assert_eq!(stats.samples, 3);
        assert!(TimingStats::from_durations(&[]).is_none());
    }

    #[test]
    fn timing_stats_from_arrivals() {
        let arrivals = vec![(ms(0), 0u64), (ms(30), 0), (ms(61), 0)];
        let stats = TimingStats::from_arrivals(&arrivals).unwrap();
        assert_eq!(stats.min, ms(30));
        assert_eq!(stats.max, ms(31));
    }

    #[test]
    fn timing_violation_detected() {
        use rtft_rtc::PjdModel;
        let consumer = PjdModel::from_ms(30.0, 2.0, 0.0);
        let good = vec![(ms(0), 0u64), (ms(31), 0), (ms(60), 0)];
        assert_eq!(first_timing_violation(&good, &consumer, ms(1)), None);
        let bad = vec![(ms(0), 0u64), (ms(31), 0), (ms(99), 0)];
        assert_eq!(first_timing_violation(&bad, &consumer, ms(1)), Some(2));
    }
}
