//! Fault injection: timing faults, value faults, and omissions.
//!
//! The paper's fault model (§2): a replica "either stops producing (or
//! consuming) tokens, or does so at a rate lower than expected", and the
//! experiments (§4.2) use the fail-stop variant ("the faulty replica stops
//! producing (or consuming) tokens altogether"). Injection is realised as a
//! transparent [`Process`] wrapper, so any process — a single transform or
//! a whole pipeline stage of an application replica — can be made faulty
//! without touching its implementation.
//!
//! Beyond the paper's single *permanent timing* fault, this module also
//! injects the fault classes a chaos campaign sweeps:
//!
//! * [`FaultKind::Transient`] / [`FaultKind::Intermittent`] — timing faults
//!   that self-heal (a stalled window, or a periodic on/off duty cycle);
//! * [`FaultKind::Corrupt`] — silent data corruption on produced tokens
//!   (bit-flip or payload substitution), invisible to the timing detectors
//!   and the reason the value-voting selector exists;
//! * [`FaultKind::Omission`] — each produced token is dropped with a fixed
//!   probability drawn from the plan's seeded RNG.

use rtft_kpn::rng::SplitMix64;
use rtft_kpn::{Payload, Process, Syscall, Token, Wakeup};
use rtft_rtc::TimeNs;
use std::fmt;

/// When the fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At a virtual time instant.
    AtTime(TimeNs),
    /// After the wrapped process has completed this many read operations
    /// (the paper injects "after 18,000 frames" / "after 20,000 samples").
    AfterReads(u64),
    /// After the wrapped process has completed this many write operations
    /// (the write-side complement of [`FaultTrigger::AfterReads`]).
    AfterWrites(u64),
    /// Never — a healthy replica.
    Never,
}

/// How a [`FaultKind::Corrupt`] fault mutates a produced payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Flip one payload bit (index taken modulo the payload width). An
    /// empty payload becomes a one-bit `U64` — the corruption is never
    /// silent at the digest level.
    BitFlip(u32),
    /// Replace the payload wholesale with `U64(marker)`.
    Substitute(u64),
}

impl CorruptionMode {
    /// Applies the corruption to `payload`.
    pub fn apply(&self, payload: &Payload) -> Payload {
        match *self {
            CorruptionMode::BitFlip(bit) => match payload {
                Payload::Empty => Payload::U64(1u64 << (bit % 64)),
                Payload::U64(v) => Payload::U64(v ^ (1u64 << (bit % 64))),
                Payload::Bytes(b) if b.is_empty() => Payload::U64(1u64 << (bit % 64)),
                Payload::Bytes(b) => {
                    let mut v = b.to_vec();
                    let i = bit as usize % (v.len() * 8);
                    v[i / 8] ^= 1 << (i % 8);
                    Payload::from(v)
                }
            },
            CorruptionMode::Substitute(marker) => Payload::U64(marker),
        }
    }
}

/// What the fault does once triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the process ceases all activity (stops consuming and
    /// producing). Permanent.
    FailStop,
    /// Degradation: every compute duration is stretched by this factor
    /// (must be > 1), so the replica keeps limping at a lower rate.
    /// Permanent.
    SlowBy(f64),
    /// Silent data corruption: every produced token's payload is mutated.
    /// Permanent, and invisible to the timing detectors.
    Corrupt(CorruptionMode),
    /// A transient stall: for `duration` after the trigger the process
    /// freezes (computations finish only after the window closes), then it
    /// heals completely.
    Transient {
        /// Length of the stalled window.
        duration: TimeNs,
    },
    /// An intermittent stall: from the trigger onwards the process cycles
    /// `on` stalled then `off` healthy, forever.
    Intermittent {
        /// Stalled phase length (must be > 0).
        on: TimeNs,
        /// Healthy phase length (must be > 0).
        off: TimeNs,
    },
    /// Omission: each produced token is independently dropped with this
    /// probability (in `[0, 1]`), drawn from the plan's seeded RNG.
    Omission(f64),
}

impl FaultKind {
    /// `true` if the fault mutates token *values* (undetectable by the
    /// counter-based timing detectors; needs the voting selector).
    pub fn affects_values(&self) -> bool {
        matches!(self, FaultKind::Corrupt(_))
    }

    /// `true` if the fault eventually (or periodically) heals on its own,
    /// i.e. it is *not* the paper's permanent fault.
    pub fn self_heals(&self) -> bool {
        matches!(
            self,
            FaultKind::Transient { .. } | FaultKind::Intermittent { .. }
        )
    }
}

/// A fault plan: trigger plus manifestation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// When the fault manifests.
    pub trigger: FaultTrigger,
    /// What the fault does.
    pub kind: FaultKind,
    /// Seed for any randomness the fault consumes (only
    /// [`FaultKind::Omission`] draws today). Guarantees that equal plans
    /// inject byte-identical fault streams.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn healthy() -> Self {
        FaultPlan {
            trigger: FaultTrigger::Never,
            kind: FaultKind::FailStop,
            seed: 0,
        }
    }

    /// Fail-stop at time `at`.
    pub fn fail_stop_at(at: TimeNs) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::FailStop,
            seed: 0,
        }
    }

    /// Fail-stop after `n` completed reads.
    pub fn fail_stop_after_reads(n: u64) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AfterReads(n),
            kind: FaultKind::FailStop,
            seed: 0,
        }
    }

    /// Fail-stop after `n` completed writes.
    pub fn fail_stop_after_writes(n: u64) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AfterWrites(n),
            kind: FaultKind::FailStop,
            seed: 0,
        }
    }

    /// Rate degradation by `factor` (> 1) starting at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn slow_by_at(factor: f64, at: TimeNs) -> Self {
        assert!(factor > 1.0, "slow-down factor must exceed 1");
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::SlowBy(factor),
            seed: 0,
        }
    }

    /// Rate degradation by `factor` (> 1) after `n` completed reads.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn slow_by_after_reads(factor: f64, n: u64) -> Self {
        assert!(factor > 1.0, "slow-down factor must exceed 1");
        FaultPlan {
            trigger: FaultTrigger::AfterReads(n),
            kind: FaultKind::SlowBy(factor),
            seed: 0,
        }
    }

    /// Payload corruption on every produced token, starting at time `at`.
    pub fn corrupt_at(mode: CorruptionMode, at: TimeNs) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::Corrupt(mode),
            seed: 0,
        }
    }

    /// A transient stall of `duration`, starting at time `at`.
    pub fn transient_at(duration: TimeNs, at: TimeNs) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::Transient { duration },
            seed: 0,
        }
    }

    /// An intermittent `on`/`off` stall cycle, starting at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if either phase is zero.
    pub fn intermittent_at(on: TimeNs, off: TimeNs, at: TimeNs) -> Self {
        assert!(
            on > TimeNs::ZERO && off > TimeNs::ZERO,
            "intermittent phases must be positive"
        );
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::Intermittent { on, off },
            seed: 0,
        }
    }

    /// Token omission with probability `p`, starting at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn omission_at(p: f64, at: TimeNs) -> Self {
        assert!((0.0..=1.0).contains(&p), "omission probability in [0, 1]");
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::Omission(p),
            seed: 0,
        }
    }

    /// The same plan with a different RNG seed (omission draws).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A process wrapper that injects a fault per a [`FaultPlan`].
///
/// Timing faults leave value-domain behaviour untouched, as the paper's
/// fail-silent assumption requires; [`FaultKind::Corrupt`] deliberately
/// breaks that assumption (that is the fault the voting selector exists
/// for), and [`FaultKind::Omission`] silently swallows produced tokens.
///
/// # Examples
///
/// ```
/// use rtft_core::{FaultPlan, FaultyProcess};
/// use rtft_kpn::{ChannelId, Collector, PortId, Process, Syscall, Wakeup};
/// use rtft_rtc::TimeNs;
///
/// let inner = Collector::new("victim", PortId::of(ChannelId(0)), None);
/// let mut faulty = FaultyProcess::new(inner, FaultPlan::fail_stop_at(TimeNs::from_ms(5)));
/// // Before the trigger the process behaves normally…
/// assert!(matches!(faulty.resume(Wakeup::Start, TimeNs::ZERO), Syscall::Read(_)));
/// // …after it, it halts.
/// let tok = rtft_kpn::Token::new(0, TimeNs::ZERO, rtft_kpn::Payload::Empty);
/// assert_eq!(faulty.resume(Wakeup::ReadDone(tok), TimeNs::from_ms(6)), Syscall::Halt);
/// ```
pub struct FaultyProcess<P> {
    inner: P,
    plan: FaultPlan,
    reads_done: u64,
    writes_done: u64,
    triggered_at: Option<TimeNs>,
    rng: SplitMix64,
}

impl<P: fmt::Debug> fmt::Debug for FaultyProcess<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyProcess")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .field("triggered_at", &self.triggered_at)
            .finish()
    }
}

impl<P: Process> FaultyProcess<P> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        FaultyProcess {
            inner,
            plan,
            reads_done: 0,
            writes_done: 0,
            triggered_at: None,
            rng: SplitMix64::seed_from_u64(plan.seed),
        }
    }

    /// The time the fault manifested, if it has.
    pub fn triggered_at(&self) -> Option<TimeNs> {
        self.triggered_at
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn due(&self, now: TimeNs) -> bool {
        match self.plan.trigger {
            FaultTrigger::AtTime(t) => now >= t,
            FaultTrigger::AfterReads(n) => self.reads_done >= n,
            FaultTrigger::AfterWrites(n) => self.writes_done >= n,
            FaultTrigger::Never => false,
        }
    }

    /// For a triggered self-healing fault: the end of the stall window
    /// covering `now`, or `None` if `now` is in a healthy phase.
    fn stall_window_end(&self, t0: TimeNs, now: TimeNs) -> Option<TimeNs> {
        match self.plan.kind {
            FaultKind::Transient { duration } => {
                let end = t0 + duration;
                (now < end).then_some(end)
            }
            FaultKind::Intermittent { on, off } => {
                let cycle = (on + off).as_ns();
                let phase = (now - t0).as_ns() % cycle;
                (phase < on.as_ns()).then(|| now + TimeNs::from_ns(on.as_ns() - phase))
            }
            _ => None,
        }
    }
}

impl<P: Process> Process for FaultyProcess<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        match wake {
            Wakeup::ReadDone(_) => self.reads_done += 1,
            Wakeup::WriteDone => self.writes_done += 1,
            _ => {}
        }
        if self.triggered_at.is_none() && self.due(now) {
            self.triggered_at = Some(now);
        }
        let Some(t0) = self.triggered_at else {
            return self.inner.resume(wake, now);
        };
        match self.plan.kind {
            FaultKind::FailStop => Syscall::Halt,
            FaultKind::SlowBy(factor) => match self.inner.resume(wake, now) {
                Syscall::Compute(d) => {
                    Syscall::Compute(TimeNs::from_ns((d.as_ns() as f64 * factor).round() as u64))
                }
                other => other,
            },
            FaultKind::Transient { .. } | FaultKind::Intermittent { .. } => {
                // Stall: within a fault window the process is frozen, so a
                // computation issued now completes only after the window
                // closes. Outside the window the replica runs healthily.
                match self.inner.resume(wake, now) {
                    Syscall::Compute(d) => match self.stall_window_end(t0, now) {
                        Some(end) => Syscall::Compute((end - now) + d),
                        None => Syscall::Compute(d),
                    },
                    other => other,
                }
            }
            FaultKind::Corrupt(mode) => match self.inner.resume(wake, now) {
                Syscall::Write(port, tok) => {
                    let payload = mode.apply(&tok.payload);
                    Syscall::Write(port, Token::new(tok.seq, tok.produced_at, payload))
                }
                other => other,
            },
            FaultKind::Omission(p) => {
                let mut wake = wake;
                loop {
                    match self.inner.resume(wake, now) {
                        Syscall::Write(port, tok) => {
                            if self.rng.next_f64() < p {
                                // Swallow the token: pretend the write
                                // completed and let the process carry on.
                                self.writes_done += 1;
                                wake = Wakeup::WriteDone;
                            } else {
                                return Syscall::Write(port, tok);
                            }
                        }
                        other => return other,
                    }
                }
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::{ChannelId, Payload, PortId, Token, Transform};

    fn transform() -> Transform {
        Transform::new(
            "t",
            PortId::of(ChannelId(0)),
            PortId::of(ChannelId(1)),
            TimeNs::from_ms(1),
            TimeNs::ZERO,
            0,
            |p| p,
        )
    }

    /// Drives one read→compute→write cycle, returning the written token.
    fn one_cycle(f: &mut FaultyProcess<Transform>, seq: u64, now: TimeNs) -> Option<Token> {
        let tok = Token::new(seq, now, Payload::U64(seq));
        match f.resume(Wakeup::ReadDone(tok), now) {
            Syscall::Compute(_) => {}
            Syscall::Halt => return None,
            other => panic!("expected compute, got {other:?}"),
        }
        match f.resume(Wakeup::ComputeDone, now) {
            Syscall::Write(_, t) => {
                // Complete the write; the process either asks for the next
                // read or halts (e.g. an AfterWrites trigger just tripped).
                let s = f.resume(Wakeup::WriteDone, now);
                assert!(matches!(s, Syscall::Read(_) | Syscall::Halt), "{s:?}");
                Some(t)
            }
            Syscall::Read(_) => None, // token swallowed (omission)
            Syscall::Halt => None,
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn healthy_plan_never_triggers() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::healthy());
        for i in 0..100u64 {
            let s = f.resume(Wakeup::Start, TimeNs::from_secs(i));
            assert_ne!(s, Syscall::Halt);
        }
        assert_eq!(f.triggered_at(), None);
    }

    #[test]
    fn fail_stop_at_time() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::fail_stop_at(TimeNs::from_ms(10)));
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::from_ms(9)),
            Syscall::Read(_)
        ));
        assert_eq!(
            f.resume(
                Wakeup::ReadDone(Token::new(0, TimeNs::ZERO, Payload::Empty)),
                TimeNs::from_ms(10)
            ),
            Syscall::Halt
        );
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(10)));
    }

    #[test]
    fn fail_stop_after_reads_counts_reads() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::fail_stop_after_reads(2));
        let tok = || Token::new(0, TimeNs::ZERO, Payload::Empty);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // First read completes → compute.
        assert!(matches!(
            f.resume(Wakeup::ReadDone(tok()), TimeNs::ZERO),
            Syscall::Compute(_)
        ));
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::ZERO),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // Second read completes → trigger.
        assert_eq!(
            f.resume(Wakeup::ReadDone(tok()), TimeNs::from_ms(3)),
            Syscall::Halt
        );
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(3)));
    }

    #[test]
    fn fail_stop_after_writes_counts_writes() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::fail_stop_after_writes(2));
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // Both writes complete; the trigger trips on the second WriteDone.
        assert!(one_cycle(&mut f, 0, TimeNs::from_ms(1)).is_some());
        assert!(one_cycle(&mut f, 1, TimeNs::from_ms(2)).is_some());
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(2)));
        // From then on the process is dead.
        assert_eq!(
            f.resume(
                Wakeup::ReadDone(Token::new(2, TimeNs::ZERO, Payload::Empty)),
                TimeNs::from_ms(3)
            ),
            Syscall::Halt
        );
    }

    #[test]
    fn slow_by_stretches_compute_only() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::slow_by_at(3.0, TimeNs::from_ms(0)));
        let tok = || Token::new(0, TimeNs::ZERO, Payload::Empty);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        match f.resume(Wakeup::ReadDone(tok()), TimeNs::ZERO) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(3)),
            other => panic!("expected stretched compute, got {other:?}"),
        }
        // Writes still happen (the replica limps, it doesn't die).
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::from_ms(3)),
            Syscall::Write(..)
        ));
    }

    #[test]
    fn slow_by_after_reads_triggers_on_count() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::slow_by_after_reads(2.0, 2));
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // First cycle at nominal speed.
        let tok = || Token::new(0, TimeNs::ZERO, Payload::Empty);
        match f.resume(Wakeup::ReadDone(tok()), TimeNs::ZERO) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::ZERO),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // Second read trips the trigger → compute stretched.
        match f.resume(Wakeup::ReadDone(tok()), TimeNs::from_ms(5)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(2)),
            other => panic!("{other:?}"),
        }
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(5)));
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn slow_by_rejects_speedups() {
        let _ = FaultPlan::slow_by_at(0.5, TimeNs::ZERO);
    }

    #[test]
    fn corrupt_bit_flip_changes_digest_only_after_trigger() {
        let plan = FaultPlan::corrupt_at(CorruptionMode::BitFlip(3), TimeNs::from_ms(10));
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // Before the trigger the payload passes through unchanged.
        let t = one_cycle(&mut f, 0, TimeNs::from_ms(1)).expect("write");
        assert_eq!(t.payload, Payload::U64(0));
        // After the trigger every write is corrupted.
        let t = one_cycle(&mut f, 1, TimeNs::from_ms(11)).expect("write");
        assert_eq!(t.payload, Payload::U64(1 ^ (1 << 3)));
        assert_ne!(t.payload.digest(), Payload::U64(1).digest());
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(11)));
    }

    #[test]
    fn corrupt_substitute_replaces_payload() {
        let plan = FaultPlan::corrupt_at(CorruptionMode::Substitute(0xDEAD), TimeNs::ZERO);
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        let t = one_cycle(&mut f, 7, TimeNs::from_ms(1)).expect("write");
        assert_eq!(t.payload, Payload::U64(0xDEAD));
    }

    #[test]
    fn bit_flip_on_bytes_flips_one_bit() {
        let p = Payload::from(vec![0u8; 4]);
        let c = CorruptionMode::BitFlip(9).apply(&p);
        assert_eq!(c.as_bytes().unwrap()[1], 0b10);
        // Flip is an involution.
        assert_eq!(CorruptionMode::BitFlip(9).apply(&c), p);
    }

    #[test]
    fn transient_stall_delays_then_heals() {
        let plan = FaultPlan::transient_at(TimeNs::from_ms(50), TimeNs::from_ms(10));
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        let tok = |s| Token::new(s, TimeNs::ZERO, Payload::Empty);
        // The trigger latches at the first resume at/after 10ms — here the
        // read at 20ms — so the stall window is [20ms, 70ms) and compute is
        // pushed past its end: 50ms left of window + 1ms service.
        match f.resume(Wakeup::ReadDone(tok(0)), TimeNs::from_ms(20)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(51)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::from_ms(71)),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::from_ms(71)),
            Syscall::Read(_)
        ));
        // After the window: healed, nominal compute.
        match f.resume(Wakeup::ReadDone(tok(1)), TimeNs::from_ms(70)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(20)));
    }

    #[test]
    fn intermittent_stall_cycles() {
        let plan =
            FaultPlan::intermittent_at(TimeNs::from_ms(10), TimeNs::from_ms(30), TimeNs::ZERO);
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        let tok = |s| Token::new(s, TimeNs::ZERO, Payload::Empty);
        // t=2ms: in the first on-phase [0, 10) → stretched to 8 + 1.
        match f.resume(Wakeup::ReadDone(tok(0)), TimeNs::from_ms(2)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(9)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::from_ms(11)),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::from_ms(11)),
            Syscall::Read(_)
        ));
        // t=15ms: off-phase [10, 40) → nominal.
        match f.resume(Wakeup::ReadDone(tok(1)), TimeNs::from_ms(15)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(1)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::from_ms(16)),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::from_ms(16)),
            Syscall::Read(_)
        ));
        // t=42ms: second on-phase [40, 50) → stretched to 8 + 1.
        match f.resume(Wakeup::ReadDone(tok(2)), TimeNs::from_ms(42)) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn omission_drops_deterministically_per_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let plan = FaultPlan::omission_at(0.5, TimeNs::ZERO).with_seed(seed);
            let mut f = FaultyProcess::new(transform(), plan);
            assert!(matches!(
                f.resume(Wakeup::Start, TimeNs::ZERO),
                Syscall::Read(_)
            ));
            (0..32)
                .filter_map(|s| one_cycle(&mut f, s, TimeNs::from_ms(s)).map(|t| t.seq))
                .collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(7);
        assert_eq!(a, b, "same seed must drop the same tokens");
        assert_ne!(a, c, "different seeds must differ");
        assert!(a.len() < 32, "p=0.5 must drop something in 32 tokens");
        assert!(!a.is_empty(), "p=0.5 must pass something in 32 tokens");
    }

    #[test]
    fn omission_probability_extremes() {
        let plan = FaultPlan::omission_at(0.0, TimeNs::ZERO);
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        for s in 0..8 {
            assert!(one_cycle(&mut f, s, TimeNs::from_ms(s)).is_some());
        }
        let plan = FaultPlan::omission_at(1.0, TimeNs::ZERO);
        let mut f = FaultyProcess::new(transform(), plan);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        for s in 0..8 {
            assert!(one_cycle(&mut f, s, TimeNs::from_ms(s)).is_none());
        }
    }

    #[test]
    fn kind_classification_helpers() {
        assert!(FaultKind::Corrupt(CorruptionMode::BitFlip(0)).affects_values());
        assert!(!FaultKind::FailStop.affects_values());
        assert!(FaultKind::Transient {
            duration: TimeNs::from_ms(1)
        }
        .self_heals());
        assert!(!FaultKind::SlowBy(2.0).self_heals());
    }
}
