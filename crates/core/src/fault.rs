//! Timing-fault injection.
//!
//! The paper's fault model (§2): a replica "either stops producing (or
//! consuming) tokens, or does so at a rate lower than expected", and the
//! experiments (§4.2) use the fail-stop variant ("the faulty replica stops
//! producing (or consuming) tokens altogether"). Injection is realised as a
//! transparent [`Process`] wrapper, so any process — a single transform or
//! a whole pipeline stage of an application replica — can be made faulty
//! without touching its implementation.

use rtft_kpn::{Process, Syscall, Wakeup};
use rtft_rtc::TimeNs;
use std::fmt;

/// When the fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At a virtual time instant.
    AtTime(TimeNs),
    /// After the wrapped process has completed this many read operations
    /// (the paper injects "after 18,000 frames" / "after 20,000 samples").
    AfterReads(u64),
    /// Never — a healthy replica.
    Never,
}

/// What the fault does once triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the process ceases all activity (stops consuming and
    /// producing).
    FailStop,
    /// Degradation: every compute duration is stretched by this factor
    /// (must be > 1), so the replica keeps limping at a lower rate.
    SlowBy(f64),
}

/// A fault plan: trigger plus manifestation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// When the fault manifests.
    pub trigger: FaultTrigger,
    /// What the fault does.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn healthy() -> Self {
        FaultPlan {
            trigger: FaultTrigger::Never,
            kind: FaultKind::FailStop,
        }
    }

    /// Fail-stop at time `at`.
    pub fn fail_stop_at(at: TimeNs) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::FailStop,
        }
    }

    /// Fail-stop after `n` completed reads.
    pub fn fail_stop_after_reads(n: u64) -> Self {
        FaultPlan {
            trigger: FaultTrigger::AfterReads(n),
            kind: FaultKind::FailStop,
        }
    }

    /// Rate degradation by `factor` (> 1) starting at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn slow_by_at(factor: f64, at: TimeNs) -> Self {
        assert!(factor > 1.0, "slow-down factor must exceed 1");
        FaultPlan {
            trigger: FaultTrigger::AtTime(at),
            kind: FaultKind::SlowBy(factor),
        }
    }
}

/// A process wrapper that injects a timing fault per a [`FaultPlan`].
///
/// Value-domain behaviour is untouched — this models a pure *timing* fault
/// as the paper requires (a fail-silent system never emits wrong values).
///
/// # Examples
///
/// ```
/// use rtft_core::{FaultPlan, FaultyProcess};
/// use rtft_kpn::{ChannelId, Collector, PortId, Process, Syscall, Wakeup};
/// use rtft_rtc::TimeNs;
///
/// let inner = Collector::new("victim", PortId::of(ChannelId(0)), None);
/// let mut faulty = FaultyProcess::new(inner, FaultPlan::fail_stop_at(TimeNs::from_ms(5)));
/// // Before the trigger the process behaves normally…
/// assert!(matches!(faulty.resume(Wakeup::Start, TimeNs::ZERO), Syscall::Read(_)));
/// // …after it, it halts.
/// let tok = rtft_kpn::Token::new(0, TimeNs::ZERO, rtft_kpn::Payload::Empty);
/// assert_eq!(faulty.resume(Wakeup::ReadDone(tok), TimeNs::from_ms(6)), Syscall::Halt);
/// ```
pub struct FaultyProcess<P> {
    inner: P,
    plan: FaultPlan,
    reads_done: u64,
    triggered_at: Option<TimeNs>,
}

impl<P: fmt::Debug> fmt::Debug for FaultyProcess<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyProcess")
            .field("inner", &self.inner)
            .field("plan", &self.plan)
            .field("triggered_at", &self.triggered_at)
            .finish()
    }
}

impl<P: Process> FaultyProcess<P> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        FaultyProcess {
            inner,
            plan,
            reads_done: 0,
            triggered_at: None,
        }
    }

    /// The time the fault manifested, if it has.
    pub fn triggered_at(&self) -> Option<TimeNs> {
        self.triggered_at
    }

    /// The wrapped process.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn due(&self, now: TimeNs) -> bool {
        match self.plan.trigger {
            FaultTrigger::AtTime(t) => now >= t,
            FaultTrigger::AfterReads(n) => self.reads_done >= n,
            FaultTrigger::Never => false,
        }
    }
}

impl<P: Process> Process for FaultyProcess<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn resume(&mut self, wake: Wakeup, now: TimeNs) -> Syscall {
        if matches!(wake, Wakeup::ReadDone(_)) {
            self.reads_done += 1;
        }
        let active = self.triggered_at.is_some() || {
            if self.due(now) {
                self.triggered_at = Some(now);
                true
            } else {
                false
            }
        };
        if active {
            match self.plan.kind {
                FaultKind::FailStop => return Syscall::Halt,
                FaultKind::SlowBy(factor) => {
                    let syscall = self.inner.resume(wake, now);
                    return match syscall {
                        Syscall::Compute(d) => Syscall::Compute(TimeNs::from_ns(
                            (d.as_ns() as f64 * factor).round() as u64,
                        )),
                        other => other,
                    };
                }
            }
        }
        self.inner.resume(wake, now)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtft_kpn::{ChannelId, Payload, PortId, Token, Transform};

    fn transform() -> Transform {
        Transform::new(
            "t",
            PortId::of(ChannelId(0)),
            PortId::of(ChannelId(1)),
            TimeNs::from_ms(1),
            TimeNs::ZERO,
            0,
            |p| p,
        )
    }

    #[test]
    fn healthy_plan_never_triggers() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::healthy());
        for i in 0..100u64 {
            let s = f.resume(Wakeup::Start, TimeNs::from_secs(i));
            assert_ne!(s, Syscall::Halt);
        }
        assert_eq!(f.triggered_at(), None);
    }

    #[test]
    fn fail_stop_at_time() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::fail_stop_at(TimeNs::from_ms(10)));
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::from_ms(9)),
            Syscall::Read(_)
        ));
        assert_eq!(
            f.resume(
                Wakeup::ReadDone(Token::new(0, TimeNs::ZERO, Payload::Empty)),
                TimeNs::from_ms(10)
            ),
            Syscall::Halt
        );
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(10)));
    }

    #[test]
    fn fail_stop_after_reads_counts_reads() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::fail_stop_after_reads(2));
        let tok = || Token::new(0, TimeNs::ZERO, Payload::Empty);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // First read completes → compute.
        assert!(matches!(
            f.resume(Wakeup::ReadDone(tok()), TimeNs::ZERO),
            Syscall::Compute(_)
        ));
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::ZERO),
            Syscall::Write(..)
        ));
        assert!(matches!(
            f.resume(Wakeup::WriteDone, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        // Second read completes → trigger.
        assert_eq!(
            f.resume(Wakeup::ReadDone(tok()), TimeNs::from_ms(3)),
            Syscall::Halt
        );
        assert_eq!(f.triggered_at(), Some(TimeNs::from_ms(3)));
    }

    #[test]
    fn slow_by_stretches_compute_only() {
        let mut f = FaultyProcess::new(transform(), FaultPlan::slow_by_at(3.0, TimeNs::from_ms(0)));
        let tok = || Token::new(0, TimeNs::ZERO, Payload::Empty);
        assert!(matches!(
            f.resume(Wakeup::Start, TimeNs::ZERO),
            Syscall::Read(_)
        ));
        match f.resume(Wakeup::ReadDone(tok()), TimeNs::ZERO) {
            Syscall::Compute(d) => assert_eq!(d, TimeNs::from_ms(3)),
            other => panic!("expected stretched compute, got {other:?}"),
        }
        // Writes still happen (the replica limps, it doesn't die).
        assert!(matches!(
            f.resume(Wakeup::ComputeDone, TimeNs::from_ms(3)),
            Syscall::Write(..)
        ));
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn slow_by_rejects_speedups() {
        let _ = FaultPlan::slow_by_at(0.5, TimeNs::ZERO);
    }
}
